package hufpar

import (
	"math"
	"math/rand"
	"testing"

	"partree/internal/huffman"
	"partree/internal/pram"
	"partree/internal/workload"
	"partree/internal/xmath"
)

func mach() *pram.Machine { return pram.New(pram.WithWorkers(4), pram.WithGrain(64)) }

func sortedVectors(rng *rand.Rand, trial int) []float64 {
	n := 1 + rng.Intn(48)
	switch trial % 4 {
	case 0:
		return workload.SortedAscending(workload.Random(rng, n))
	case 1:
		return workload.SortedAscending(workload.Zipf(n, 1.2))
	case 2:
		return workload.SortedAscending(workload.Geometric(n, 0.8))
	default:
		return workload.Fibonacci(n) // already increasing
	}
}

// Theorem 3.1 correctness: the RAKE/COMPRESS DP equals the sequential
// optimum on sorted vectors.
func TestCostRakeCompressMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(103))
	m := mach()
	for trial := 0; trial < 40; trial++ {
		w := sortedVectors(rng, trial)
		want := huffman.Cost(w)
		got := CostRakeCompress(m, w)
		if !xmath.AlmostEqual(got, want, 1e-9) {
			t.Fatalf("trial %d n=%d: rake/compress %v, sequential %v", trial, len(w), got, want)
		}
	}
}

func TestCostRakeCompressSmallKnown(t *testing.T) {
	m := mach()
	if got := CostRakeCompress(m, []float64{1}); got != 0 {
		t.Errorf("n=1 cost = %v", got)
	}
	if got := CostRakeCompress(m, []float64{0.4, 0.6}); got != 1 {
		t.Errorf("n=2 cost = %v", got)
	}
	// (1,1,2): depths 2,2,1 → cost 1·2+1·2+2·1 = 6.
	if got := CostRakeCompress(m, []float64{1, 1, 2}); got != 6 {
		t.Errorf("n=3 cost = %v, want 6", got)
	}
}

func TestCostRakeCompressRejectsUnsorted(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("unsorted input must panic")
		}
	}()
	CostRakeCompress(mach(), []float64{3, 1})
}

// Theorem 3.1 round structure: the algorithm issues O(log n) parallel
// statements regardless of n.
func TestRakeCompressRoundCount(t *testing.T) {
	for _, n := range []int{16, 64, 256} {
		m := pram.New() // unbounded processors
		w := workload.SortedAscending(workload.Random(rand.New(rand.NewSource(1)), n))
		CostRakeCompress(m, w)
		steps := m.Counters().Steps
		want := int64(2*xmath.CeilLog2(n) + 1) // H rounds + F init + F rounds
		if steps != want {
			t.Errorf("n=%d: %d parallel statements, want %d", n, steps, want)
		}
	}
}

// Theorem 5.1 correctness: cost and reconstructed tree both match the
// sequential optimum, and the tree is a valid left-justified positional
// tree over the sorted leaves.
func TestBuildConcaveMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(107))
	m := mach()
	for trial := 0; trial < 40; trial++ {
		w := sortedVectors(rng, trial)
		want := huffman.Cost(w)
		res := BuildConcave(m, w)
		if !xmath.AlmostEqual(res.Cost, want, 1e-9) {
			t.Fatalf("trial %d n=%d: concave cost %v, sequential %v", trial, len(w), res.Cost, want)
		}
		if got := res.Tree.WeightedPathLength(); !xmath.AlmostEqual(got, want, 1e-9) {
			t.Fatalf("trial %d: tree WPL %v ≠ optimal %v", trial, got, want)
		}
		if err := res.Tree.Validate(); err != nil {
			t.Fatalf("trial %d: invalid tree: %v", trial, err)
		}
		leaves := res.Tree.Leaves()
		if len(leaves) != len(w) {
			t.Fatalf("trial %d: %d leaves, want %d", trial, len(leaves), len(w))
		}
		for i, leaf := range leaves {
			if leaf.Symbol != i {
				t.Fatalf("trial %d: leaf %d has symbol %d (positional order broken)", trial, i, leaf.Symbol)
			}
		}
	}
}

// Lemma 3.1, observed: the reconstructed optimal tree for a monotone
// vector is left-justified.
func TestBuildConcaveTreeLeftJustified(t *testing.T) {
	rng := rand.New(rand.NewSource(109))
	m := mach()
	for trial := 0; trial < 20; trial++ {
		w := sortedVectors(rng, trial)
		res := BuildConcave(m, w)
		if !res.Tree.IsLeftJustified() {
			t.Fatalf("trial %d n=%d: reconstructed tree not left-justified:\n%s",
				trial, len(w), res.Tree)
		}
	}
}

func TestBuildConcaveSingle(t *testing.T) {
	res := BuildConcave(mach(), []float64{0.7})
	if res.Cost != 0 || !res.Tree.IsLeaf() {
		t.Error("single-symbol result wrong")
	}
}

// Theorem 5.1 shape: comparison work stays O(n² log n) (vs n³ for the
// naive DP) and the statement depth is polylogarithmic.
func TestBuildConcaveWorkAndDepth(t *testing.T) {
	n := 128
	w := workload.SortedAscending(workload.Random(rand.New(rand.NewSource(2)), n))
	m := pram.New() // unbounded: steps = statement count
	res := BuildConcave(m, w)
	n2 := int64(n) * int64(n)
	logn := int64(xmath.CeilLog2(n))
	if res.Comparisons > 40*n2*logn {
		t.Errorf("comparisons %d exceed 40·n²·log n = %d", res.Comparisons, 40*n2*logn)
	}
	steps := m.Counters().Steps
	// 2·log n products, each O(log n) statements → O(log² n).
	budget := int64(8 * (logn + 1) * (logn + 1))
	if steps > budget {
		t.Errorf("statement depth %d exceeds O(log² n) budget %d", steps, budget)
	}
}

// The Fibonacci vector drives the deepest spine (n-1); the concave
// algorithm must still reconstruct it exactly.
func TestBuildConcaveFibonacciDeepSpine(t *testing.T) {
	n := 14
	w := workload.Fibonacci(n)
	res := BuildConcave(mach(), w)
	if h := res.Tree.Height(); h != n-1 {
		t.Errorf("Fibonacci tree height = %d, want %d", h, n-1)
	}
	if !xmath.AlmostEqual(res.Cost, huffman.Cost(w), 1e-12) {
		t.Errorf("Fibonacci cost mismatch")
	}
}

// Cross-check the two parallel algorithms against each other on larger
// inputs than the sequential cross-check uses.
func TestParallelAlgorithmsAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(113))
	m := mach()
	for _, n := range []int{64, 100, 150} {
		w := workload.SortedAscending(workload.Random(rng, n))
		a := CostRakeCompress(m, w)
		b := BuildConcave(m, w).Cost
		if !xmath.AlmostEqual(a, b, 1e-9) {
			t.Errorf("n=%d: rake/compress %v vs concave %v", n, a, b)
		}
	}
}

func TestCheckSortedRejectsNaN(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NaN weight must panic")
		}
	}()
	checkSorted([]float64{0.5, math.NaN()})
}
