package hufpar

import (
	"fmt"

	"partree/internal/faultpoint"
	"partree/internal/matrix"
	"partree/internal/monge"
	"partree/internal/pram"
	"partree/internal/semiring"
	"partree/internal/tree"
)

// HeightLimited computes an optimal prefix-code tree of height at most h
// for a non-decreasing frequency vector, by running the Section 5
// height-bounded recurrence to level h: A_t = (A_{t-1} ⋆ A_{t-1}) + S,
// each step one concave matrix product (Lemma 5.1 keeps every level
// concave). This is the "Constructing Height Bounded Subtrees" half of
// the paper's paradigm exposed as a feature in its own right — the
// length-limited coding problem — with the tree reconstructed from the
// stored cut tables. It returns an error when 2^h < n.
func HeightLimited(m *pram.Machine, weights []float64, h int) (*tree.Node, float64, error) {
	checkSorted(weights)
	n := len(weights)
	if n == 1 {
		return tree.NewLeaf(0, weights[0]), 0, nil
	}
	if h < 1 || (h < 63 && 1<<uint(h) < n) {
		return nil, 0, fmt.Errorf("hufpar: %d symbols cannot fit in height %d", n, h)
	}
	pre := prefixSums(weights)
	defer m.Phase("hufpar.HeightLimited")()

	s := matrix.NewInf(n+1, n+1)
	for i := 0; i <= n; i++ {
		for j := i + 1; j <= n; j++ {
			s.Set(i, j, pre[j]-pre[i])
		}
	}
	a := matrix.NewInf(n+1, n+1)
	for i := 0; i < n; i++ {
		a.Set(i, i+1, 0)
	}
	var cnt matrix.OpCount
	cuts := make([]*matrix.IntMat, h)
	var prod *matrix.Dense
	defer func() {
		if rec := recover(); rec != nil {
			for _, c := range cuts {
				c.Release()
			}
			prod.Release()
			panic(rec)
		}
	}()
	for t := 0; t < h; t++ {
		faultpoint.Hit("hufpar.height.level")
		var cut *matrix.IntMat
		prod, cut = monge.MulPar(m, a, a, &cnt)
		cuts[t] = cut
		next := matrix.NewInf(n+1, n+1)
		m.For((n+1)*(n+1), func(e int) {
			i, j := e/(n+1), e%(n+1)
			switch {
			case j == i+1:
				next.Set(i, j, 0)
			case j > i+1:
				next.Set(i, j, prod.At(i, j)+s.At(i, j))
			}
		})
		a = next
		prod.Release()
		prod = nil
	}
	releaseCuts := func() {
		for _, c := range cuts {
			c.Release()
		}
		cuts = nil
	}
	cost := a.At(0, n)
	if semiring.IsInf(cost) {
		releaseCuts()
		return nil, 0, fmt.Errorf("hufpar: height %d infeasible for %d symbols", h, n)
	}
	t := heightSubtree(weights, cuts, 0, n, h)
	releaseCuts()
	return t, cost, nil
}
