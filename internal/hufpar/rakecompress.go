// Package hufpar implements the paper's parallel Huffman-coding
// algorithms: the Section 3 RAKE/COMPRESS dynamic program (Theorem 3.1, n³
// work but only O(log n) rounds) and the Section 5 algorithm built on
// concave matrix multiplication (Theorem 5.1, O(log² n) time with n²/log n
// processors), including full tree reconstruction from the stored cut
// tables.
//
// Both algorithms require the frequency vector in non-decreasing order;
// the general problem reduces to this case by one sort (Section 3). Both
// rest on Lemma 3.1: a monotone frequency vector has an optimal positional
// tree that is left-justified, so the search space can be restricted to
// trees whose off-spine subtrees have height ≤ ⌈log n⌉ (Corollary 2.1).
package hufpar

import (
	"fmt"
	"math"

	"partree/internal/pram"
	"partree/internal/semiring"
	"partree/internal/xmath"
)

// checkSorted panics unless weights is non-empty, non-negative and
// non-decreasing.
func checkSorted(weights []float64) {
	if len(weights) == 0 {
		panic("hufpar: empty frequency vector")
	}
	for i, w := range weights {
		if w < 0 || math.IsNaN(w) {
			panic(fmt.Sprintf("hufpar: bad weight %v at %d", w, i))
		}
		if i > 0 && w < weights[i-1] {
			panic("hufpar: weights must be non-decreasing (sort first; see Section 3)")
		}
	}
}

// prefixSums returns pre with pre[j] = p_1 + … + p_j (pre[0] = 0), so that
// the paper's p_{i,j} = Σ_{l=i}^{j} p_l is pre[j] − pre[i-1] and
// S[i][j] = Σ_{k=i+1}^{j} p_k is pre[j] − pre[i].
func prefixSums(weights []float64) []float64 {
	pre := make([]float64, len(weights)+1)
	for i, w := range weights {
		pre[i+1] = pre[i] + w
	}
	return pre
}

// CostRakeCompress computes the minimum average word length of a Huffman
// code for a non-decreasing frequency vector with the Section 3 algorithm:
// ⌈log n⌉ re-estimations of the H recurrence (each simulating one RAKE)
// followed by ⌈log n⌉ re-estimations of the F recurrence (each simulating
// one COMPRESS, i.e. doubling along the leftmost path). Work is Θ(n³) per
// round — the point of the algorithm is its O(log n) round count, which
// the machine's step counters expose.
//
// Note on the F recurrence: the paper's relation (2) writes the extension
// term as H_{i+1,j} + p_{i,j}; the Section 5 path-matrix formulation of the
// same quantity (M[i][j] = A[i][j] + S[0][j]) shows the weight term is the
// full prefix p_{1,j} — hanging the prefix tree one level deeper costs the
// total weight of all j leaves. We implement that (correct) form.
func CostRakeCompress(m *pram.Machine, weights []float64) float64 {
	checkSorted(weights)
	n := len(weights)
	if n == 1 {
		return 0
	}
	pre := prefixSums(weights)
	rounds := xmath.CeilLog2(n)

	// H[i][j] for 1 ≤ i ≤ j ≤ n, flattened with stride n+1 (row i, col j).
	idx := func(i, j int) int { return i*(n+1) + j }
	size := (n + 1) * (n + 1)
	h := make([]float64, size)
	hNext := make([]float64, size)
	for i := range h {
		h[i] = semiring.Inf
	}
	for i := 1; i <= n; i++ {
		h[idx(i, i)] = 0
	}

	// Step 2: ⌈log n⌉ RAKE simulations. One parallel statement per round,
	// one virtual processor per (i,j) pair scanning all split points.
	restore := m.Phase("hufpar.rake")
	for r := 0; r < rounds; r++ {
		m.For(n*n, func(e int) {
			i := e/n + 1
			j := e%n + 1
			if i >= j {
				if i == j {
					hNext[idx(i, j)] = 0
				} else {
					hNext[idx(i, j)] = semiring.Inf
				}
				return
			}
			best := semiring.Inf
			for k := i + 1; k <= j; k++ {
				if s := h[idx(i, k-1)] + h[idx(k, j)]; s < best {
					best = s
				}
			}
			hNext[idx(i, j)] = best + (pre[j] - pre[i-1])
		})
		h, hNext = hNext, h
	}
	restore()

	// Step 3: initialize F[i][j] = H[i+1][j] + p_{1,j} for 1 ≤ i < j ≤ n.
	f := make([]float64, size)
	fNext := make([]float64, size)
	for i := range f {
		f[i] = semiring.Inf
	}
	m.For(n*n, func(e int) {
		i := e/n + 1
		j := e%n + 1
		if i < j {
			f[idx(i, j)] = h[idx(i+1, j)] + pre[j]
		}
	})

	// Step 4: ⌈log n⌉ COMPRESS simulations: F' = min(E, F⋆F) where E is the
	// one-step extension kept inside via the i+1=j base of relation (2).
	restore = m.Phase("hufpar.compress")
	for r := 0; r < rounds; r++ {
		m.For(n*n, func(e int) {
			i := e/n + 1
			j := e%n + 1
			if i >= j {
				fNext[idx(i, j)] = semiring.Inf
				return
			}
			best := h[idx(i+1, j)] + pre[j] // extension term of relation (2)
			for k := i + 1; k < j; k++ {
				if s := f[idx(i, k)] + f[idx(k, j)]; s < best {
					best = s
				}
			}
			fNext[idx(i, j)] = best
		})
		f, fNext = fNext, f
	}
	restore()

	// Step 5: F_{1,n} is the minimum average word length.
	return f[idx(1, n)]
}
