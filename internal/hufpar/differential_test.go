package hufpar

import (
	"math/rand"
	"sort"
	"testing"

	"partree/internal/huffman"
	"partree/internal/pram"
	"partree/internal/xmath"
)

// Differential property tests: the serial huffman package is a cheap,
// independently tested oracle, so every parallel construction must land
// on exactly its optimal cost, over seeded random weight profiles.

// randSorted draws n positive weights from one of several shapes and
// returns them ascending (the paper's algorithms assume sorted input).
func randSorted(rng *rand.Rand, n int) []float64 {
	xs := make([]float64, n)
	switch rng.Intn(4) {
	case 0: // uniform random
		for i := range xs {
			xs[i] = rng.Float64() + 1e-9
		}
	case 1: // exponentially spread — deep skewed trees
		for i := range xs {
			xs[i] = rng.Float64() * float64(int64(1)<<uint(rng.Intn(40)))
		}
	case 2: // many ties — stresses tie-breaking
		for i := range xs {
			xs[i] = float64(1 + rng.Intn(4))
		}
	default: // near-equal weights — balanced trees
		for i := range xs {
			xs[i] = 1 + rng.Float64()*1e-6
		}
	}
	sort.Float64s(xs)
	return xs
}

func TestDifferentialConcaveVsSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	m := pram.New(pram.WithWorkers(4))
	for trial := 0; trial < 60; trial++ {
		n := 2 + rng.Intn(200)
		w := randSorted(rng, n)
		want := huffman.Cost(w)
		res := BuildConcave(m, w)
		if !xmath.AlmostEqual(res.Cost, want, 1e-6*(1+want)) {
			t.Fatalf("trial %d (n=%d): parallel cost %v, serial optimal %v\nweights: %v",
				trial, n, res.Cost, want, w)
		}
		if got := res.Tree.WeightedPathLength(); !xmath.AlmostEqual(got, want, 1e-6*(1+want)) {
			t.Fatalf("trial %d (n=%d): tree weighted depth %v, serial optimal %v",
				trial, n, got, want)
		}
	}
}

func TestDifferentialRakeCompressVsSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(52))
	m := pram.New(pram.WithWorkers(2), pram.WithGrain(32))
	for trial := 0; trial < 60; trial++ {
		n := 2 + rng.Intn(150)
		w := randSorted(rng, n)
		want := huffman.Cost(w)
		got := CostRakeCompress(m, w)
		if !xmath.AlmostEqual(got, want, 1e-6*(1+want)) {
			t.Fatalf("trial %d (n=%d): rake/compress cost %v, serial optimal %v\nweights: %v",
				trial, n, got, want, w)
		}
	}
}
