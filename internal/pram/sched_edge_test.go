package pram

import (
	"sync"
	"sync/atomic"
	"testing"

	"partree/internal/trace"
)

// Edge-case coverage for the scheduler's partitioning and stealing:
// statements smaller than the worker pool, grains larger than the
// statement, lone-index steals, and the ForRange call-count contract.

// countWorkerSpans runs one traced statement and returns how many
// CatWorker slices it emitted — the observable worker count.
func countWorkerSpans(t *testing.T, m *Machine, n int, body func(i int)) int {
	t.Helper()
	tr := trace.New(0)
	m.SetTracer(tr)
	defer m.SetTracer(nil)
	m.For(n, body)
	count := 0
	for _, s := range tr.Spans() {
		if s.Cat == trace.CatWorker {
			count++
		}
	}
	return count
}

// TestForFewerElementsThanWorkers: n < workers must still execute every
// index exactly once and must not dispatch more workers than chunks.
func TestForFewerElementsThanWorkers(t *testing.T) {
	m := New(WithWorkers(8), WithGrain(1))
	var hits [3]atomic.Int32
	if got := countWorkerSpans(t, m, len(hits), func(i int) { hits[i].Add(1) }); got != len(hits) {
		t.Errorf("worker spans = %d, want %d (one per chunk, not per pool worker)", got, len(hits))
	}
	for i := range hits {
		if c := hits[i].Load(); c != 1 {
			t.Errorf("index %d executed %d times, want 1", i, c)
		}
	}
}

// TestForGrainLargerThanN: a statement that fits in one grain runs
// serially on the caller — one chunk, no pool dispatch, full coverage.
func TestForGrainLargerThanN(t *testing.T) {
	m := New(WithWorkers(4), WithGrain(100))
	before := SpawnedWorkers()
	var hits [10]int // no atomics: serial execution is part of the contract
	m.For(len(hits), func(i int) { hits[i]++ })
	for i, c := range hits {
		if c != 1 {
			t.Errorf("index %d executed %d times, want 1", i, c)
		}
	}
	if d := SpawnedWorkers() - before; d != 0 {
		t.Errorf("serial statement spawned %d workers, want 0", d)
	}
}

// TestWorkerCountReducedToChunks: when ⌈n/g⌉ < workers the statement
// must shrink to one worker per chunk rather than waking idle workers.
func TestWorkerCountReducedToChunks(t *testing.T) {
	m := New(WithWorkers(8), WithGrain(16))
	var n atomic.Int64
	// 40 elements at grain 16 → 3 chunks → 3 workers.
	if got := countWorkerSpans(t, m, 40, func(i int) { n.Add(1) }); got != 3 {
		t.Errorf("worker spans = %d, want 3 (⌈40/16⌉ chunks)", got)
	}
	if n.Load() != 40 {
		t.Errorf("executed %d iterations, want 40", n.Load())
	}
}

// TestStealLoneIndex: stealing from a deque holding a single remaining
// index must hand the thief that index (n/2 rounds to zero) and leave
// the victim empty — the n==1 case that guards against a steal that
// takes nothing and spins.
func TestStealLoneIndex(t *testing.T) {
	var d wdeque
	d.install(5, 6)
	lo, hi, ok := d.steal()
	if !ok || lo != 5 || hi != 6 {
		t.Fatalf("steal of lone index = (%d, %d, %v), want (5, 6, true)", lo, hi, ok)
	}
	if _, _, ok := d.steal(); ok {
		t.Error("second steal succeeded on an emptied deque")
	}
	if _, _, ok := d.pop(1); ok {
		t.Error("pop succeeded on an emptied deque")
	}
}

// TestForRangeCallCountTolerance: ForRange bodies must tolerate any
// number of calls; the scheduler guarantees only that the calls are
// disjoint, cover [0, n), and number at least 1 and at most n.
func TestForRangeCallCountTolerance(t *testing.T) {
	const n = 64
	m := New(WithWorkers(4), WithGrain(8))
	var mu sync.Mutex
	calls := 0
	seen := make([]int, n)
	for rep := 0; rep < 4; rep++ {
		mu.Lock()
		calls = 0
		for i := range seen {
			seen[i] = 0
		}
		mu.Unlock()
		m.ForRange(n, func(lo, hi int) {
			if lo < 0 || hi > n || lo >= hi {
				t.Errorf("bad range [%d, %d)", lo, hi)
			}
			mu.Lock()
			calls++
			for i := lo; i < hi; i++ {
				seen[i]++
			}
			mu.Unlock()
		})
		mu.Lock()
		if calls < 1 || calls > n {
			t.Errorf("rep %d: %d body calls, want within [1, %d]", rep, calls, n)
		}
		for i, c := range seen {
			if c != 1 {
				t.Errorf("rep %d: index %d covered %d times, want 1", rep, i, c)
			}
		}
		mu.Unlock()
	}
}
