package pram

import (
	"sync/atomic"
	"testing"
)

func TestForCoversAllIndices(t *testing.T) {
	m := New(WithWorkers(4), WithGrain(8))
	const n = 1000
	seen := make([]int32, n)
	m.For(n, func(i int) { atomic.AddInt32(&seen[i], 1) })
	for i, c := range seen {
		if c != 1 {
			t.Fatalf("index %d executed %d times, want 1", i, c)
		}
	}
}

func TestForZeroAndNegative(t *testing.T) {
	m := New()
	ran := false
	m.For(0, func(int) { ran = true })
	m.For(-5, func(int) { ran = true })
	if ran {
		t.Error("body ran for non-positive n")
	}
	if c := m.Counters(); c.Steps != 0 || c.Work != 0 || c.Calls != 0 {
		t.Errorf("counters should be zero, got %+v", c)
	}
}

func TestBrentStepAccounting(t *testing.T) {
	// With p processors, a statement over n virtual processors costs ⌈n/p⌉.
	m := New(WithProcessors(10))
	m.For(25, func(int) {})
	if c := m.Counters(); c.Steps != 3 {
		t.Errorf("steps = %d, want ⌈25/10⌉ = 3", c.Steps)
	}
	m.Reset()
	m.For(10, func(int) {})
	m.For(1, func(int) {})
	c := m.Counters()
	if c.Steps != 2 {
		t.Errorf("steps = %d, want 2", c.Steps)
	}
	if c.Work != 11 {
		t.Errorf("work = %d, want 11", c.Work)
	}
	if c.Calls != 2 {
		t.Errorf("calls = %d, want 2", c.Calls)
	}
}

func TestUnboundedProcessorsOneStepPerStatement(t *testing.T) {
	m := New()
	for i := 0; i < 7; i++ {
		m.For(1_000_000, func(int) {})
	}
	if c := m.Counters(); c.Steps != 7 {
		t.Errorf("steps = %d, want 7 (one per statement)", c.Steps)
	}
}

func TestSequentialStepAccounting(t *testing.T) {
	m := New()
	m.Step(5)
	m.Step(0)
	m.Step(-3)
	if c := m.Counters(); c.Steps != 5 || c.Work != 5 {
		t.Errorf("counters = %+v, want steps=work=5", c)
	}
}

func TestNestedForPanics(t *testing.T) {
	m := New(WithWorkers(1))
	defer func() {
		if recover() == nil {
			t.Error("nested For should panic")
		}
	}()
	m.For(3, func(int) {
		m.For(2, func(int) {})
	})
}

func TestForRangeCoversAllIndices(t *testing.T) {
	m := New(WithWorkers(3), WithGrain(4))
	const n = 100
	seen := make([]int32, n)
	m.ForRange(n, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			atomic.AddInt32(&seen[i], 1)
		}
	})
	for i, c := range seen {
		if c != 1 {
			t.Fatalf("index %d covered %d times, want 1", i, c)
		}
	}
}

func TestOptionsValidation(t *testing.T) {
	for name, f := range map[string]func(){
		"procs":   func() { New(WithProcessors(0)) },
		"workers": func() { New(WithWorkers(0)) },
		"grain":   func() { New(WithGrain(0)) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic for invalid option", name)
				}
			}()
			f()
		}()
	}
}

func TestModelString(t *testing.T) {
	if EREW.String() != "EREW" || CREW.String() != "CREW" || CRCWCommon.String() != "CRCW(common)" {
		t.Error("model names wrong")
	}
	if Model(99).String() == "" {
		t.Error("unknown model should still render")
	}
}

func TestMachineAccessors(t *testing.T) {
	m := New(WithModel(EREW), WithProcessors(17), WithWorkers(2))
	if m.Model() != EREW || m.Processors() != 17 || m.Workers() != 2 {
		t.Errorf("accessors returned %v/%d/%d", m.Model(), m.Processors(), m.Workers())
	}
}

func TestConcurrentForPanics(t *testing.T) {
	m := New(WithWorkers(2), WithGrain(1))
	block := make(chan struct{})
	started := make(chan struct{})
	go func() {
		m.For(4, func(i int) {
			if i == 0 {
				close(started)
				<-block
			}
		})
	}()
	<-started
	func() {
		defer func() {
			if recover() == nil {
				t.Error("concurrent For from a second goroutine should panic")
			}
			close(block)
		}()
		m.For(2, func(int) {})
	}()
}

func TestNestedForRangePanics(t *testing.T) {
	m := New(WithWorkers(1))
	defer func() {
		if recover() == nil {
			t.Error("nested ForRange should panic")
		}
	}()
	m.ForRange(3, func(lo, hi int) {
		m.ForRange(2, func(lo, hi int) {})
	})
}
