package pram

import (
	"fmt"
	"sync"
)

// Violation records a memory-access conflict that the declared PRAM model
// forbids, detected by a TraceMemory within a single synchronous step.
type Violation struct {
	Step  int64  // step index at which the conflict occurred
	Cell  int    // memory cell index
	Kind  string // "concurrent-read", "concurrent-write", "inconsistent-write"
	Count int    // number of conflicting accesses
}

func (v Violation) String() string {
	return fmt.Sprintf("step %d cell %d: %s ×%d", v.Step, v.Cell, v.Kind, v.Count)
}

// TraceMemory is an instrumented shared-memory array used in tests to verify
// that an algorithm respects its declared PRAM model (e.g. that the monotone
// leaf-pattern construction really is EREW). All accesses within one
// synchronous step are recorded; EndStep checks them against the model and
// clears the trace. TraceMemory is safe for concurrent access.
//
// TraceMemory deliberately trades speed for checking and is not used on the
// production code paths.
type TraceMemory struct {
	model Model

	mu     sync.Mutex
	cells  []float64
	step   int64
	reads  map[int]int
	writes map[int][]float64
	viols  []Violation
}

// NewTraceMemory creates a conflict-checking memory of n cells for the given
// model, initialized to zero.
func NewTraceMemory(model Model, n int) *TraceMemory {
	return &TraceMemory{
		model:  model,
		cells:  make([]float64, n),
		reads:  make(map[int]int),
		writes: make(map[int][]float64),
	}
}

// Len returns the number of cells.
func (t *TraceMemory) Len() int { return len(t.cells) }

// Read returns the value of cell i as of the beginning of the current step
// and records the access.
func (t *TraceMemory) Read(i int) float64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.reads[i]++
	return t.cells[i]
}

// Write records a write of v to cell i. On a synchronous PRAM all writes of
// a step commit together at the step barrier; TraceMemory therefore defers
// the store until EndStep.
func (t *TraceMemory) Write(i int, v float64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.writes[i] = append(t.writes[i], v)
}

// EndStep is the step barrier: it validates the accumulated accesses against
// the model, commits pending writes, and advances the step counter.
func (t *TraceMemory) EndStep() {
	t.mu.Lock()
	defer t.mu.Unlock()

	if t.model == EREW {
		for cell, n := range t.reads {
			if n > 1 {
				t.viols = append(t.viols, Violation{t.step, cell, "concurrent-read", n})
			}
		}
	}
	for cell, vals := range t.writes {
		switch {
		case len(vals) > 1 && t.model != CRCWCommon:
			t.viols = append(t.viols, Violation{t.step, cell, "concurrent-write", len(vals)})
		case len(vals) > 1 && t.model == CRCWCommon:
			for _, v := range vals[1:] {
				if v != vals[0] {
					t.viols = append(t.viols, Violation{t.step, cell, "inconsistent-write", len(vals)})
					break
				}
			}
		}
		// Commit: under CRCW(common) all values agree (or a violation was
		// recorded); an arbitrary representative is stored either way.
		t.cells[cell] = vals[0]
	}
	t.reads = make(map[int]int)
	t.writes = make(map[int][]float64)
	t.step++
}

// Violations returns all conflicts detected so far.
func (t *TraceMemory) Violations() []Violation {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Violation, len(t.viols))
	copy(out, t.viols)
	return out
}

// Snapshot returns a copy of the current committed cell values.
func (t *TraceMemory) Snapshot() []float64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]float64, len(t.cells))
	copy(out, t.cells)
	return out
}
