package pram

import "context"

// Cooperative cancellation.
//
// A Machine optionally carries a context.Context; when it does, the
// orchestrating goroutine polls it at statement barriers — on entry to
// every For/ForRange and again when the worker barrier releases — and the
// serial fast path polls between grain-sized chunks. Worker goroutines
// additionally poll at their pop/steal boundaries and simply stop taking
// work; only the orchestrator unwinds, by panicking with an *abortPanic
// that Run converts back into the context's error. Kernels holding pooled
// workspaces across statements install recover-release-repanic defers so
// the unwind returns every slab to the arena (the pooldebug ledger stays
// balanced across an abort).
//
// Barriers are the cheap place to poll: the fast path with no context
// attached is a single nil check (no allocation, no atomic), polling
// never appears in the counted Steps/Work, and between barriers the
// workers run exactly the code they run today. A machine whose statement
// was aborted mid-flight has executed an unspecified subset of the
// statement's iterations; callers must discard it (and any data it was
// writing) after Run returns a non-nil error.

// abortPanic carries the context error through the kernel stack from a
// checkpoint to the enclosing Run. It is deliberately unexported: foreign
// panics pass through Run untouched.
type abortPanic struct{ err error }

// SetContext attaches ctx for cooperative cancellation of subsequent
// statements. Contexts that can never be canceled (context.Background,
// context.TODO — anything whose Done returns nil) are ignored, keeping
// the zero-overhead fast path. Passing nil detaches any prior context.
// SetContext must not be called concurrently with a running For.
func (m *Machine) SetContext(ctx context.Context) {
	if ctx == nil || ctx.Done() == nil {
		m.ctx = nil
		return
	}
	m.ctx = ctx
}

// Err returns the attached context's error: nil while live, and
// context.Canceled or context.DeadlineExceeded once the context is done.
// Safe to call from statement bodies on worker goroutines.
func (m *Machine) Err() error {
	if m.ctx == nil {
		return nil
	}
	return m.ctx.Err()
}

// Canceled reports whether the attached context is done. Statement bodies
// use it to skip per-iteration work cooperatively (return early) without
// panicking on a worker goroutine; the orchestrator's next checkpoint
// turns the condition into an error.
func (m *Machine) Canceled() bool { return m.Err() != nil }

// checkpoint aborts the current computation if the attached context is
// done. It must only run on the orchestrating goroutine (the one inside
// Run): the abort is a panic, and a panic on a worker goroutine would
// kill the process instead of unwinding to Run's recover.
func (m *Machine) checkpoint() {
	if m.ctx == nil {
		return
	}
	if err := m.ctx.Err(); err != nil {
		panic(&abortPanic{err})
	}
}

// Run executes f, converting a cancellation unwind from one of f's
// checkpoints into that context's error (context.Canceled or
// context.DeadlineExceeded). All other panics propagate unchanged. On a
// non-nil return the machine's statement may have been cut mid-flight:
// discard the machine and whatever f was computing.
func (m *Machine) Run(f func()) (err error) {
	defer func() {
		if r := recover(); r != nil {
			ap, ok := r.(*abortPanic)
			if !ok {
				panic(r)
			}
			err = ap.err
		}
	}()
	f()
	return nil
}
