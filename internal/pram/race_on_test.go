//go:build race

package pram

// raceEnabled reports whether the race detector is compiled in; timing
// assertions that compare measured per-element cost against absolute
// thresholds are skipped under -race, where instrumentation multiplies
// the cost of the very bodies being calibrated.
const raceEnabled = true
