package pram

import (
	"sync"
	"sync/atomic"
	"time"
)

// The execution engine behind Machine.For: a work-stealing scheduler.
//
// Each parallel statement's index space [0, n) is partitioned evenly into
// one contiguous range per executing worker, held in a per-worker deque.
// A worker pops grain-sized chunks from the bottom (low end) of its own
// range; when its range is empty it steals the top half of a victim's
// remaining range and installs it as its own (chunk stealing, in the
// style of lazy binary splitting). Stealing moves whole half-ranges, so
// the total number of steals per statement is O(w log(n/g)) and the mutex
// on each deque is uncontended in the common case.
//
// A thief executes the first grain of a stolen range immediately and
// parks only the remainder in its own deque. That ordering is what makes
// the scheduler livelock-free: every successful steal executes at least
// one index before the thief steals again, so steals per statement are
// bounded by the element count. (Install-then-pop, the obvious ordering,
// lets another thief snatch the range back through the window between
// install and pop — on a contended host two workers can phase-lock into
// stealing a single index back and forth indefinitely.)
//
// A worker exits after one full scan of all deques finds nothing to
// steal. The chunk a thief is currently executing is invisible to that
// scan, so a worker can exit while work remains in flight — that only
// reduces parallelism at the statement's tail, never correctness,
// because the holder always executes what it stole. The statement
// barrier is the WaitGroup around the worker calls: For returns only
// after every range has been executed exactly once.
//
// Worker goroutines are normally resident (see wpool.go): parked between
// statements and woken per statement, so steady-state dispatch spawns
// nothing. runSpawn below is the legacy spawn-per-statement dispatcher,
// kept selectable (WithSpawnDispatch) as the measurable pre-resident
// baseline for the E14 dispatch-overhead experiment.

// spawnedWorkers counts every worker goroutine launched by either
// dispatcher, process-wide. Monotone between resets; read it twice and
// subtract to measure goroutines spawned by a window of statements (the
// resident pool's steady state must show a delta of zero).
var spawnedWorkers atomic.Int64

// SpawnedWorkers returns the total number of PRAM worker goroutines
// launched in this process since start (or the last ResetSpawnedWorkers).
func SpawnedWorkers() int64 { return spawnedWorkers.Load() }

// ResetSpawnedWorkers zeroes the process-wide spawn counter. Experiments
// that share one process (E14, E15) call it between runs so one
// experiment's warm-up spawns never leak into another's steady-state
// window; production code has no reason to call it.
func ResetSpawnedWorkers() { spawnedWorkers.Store(0) }

// wdeque is one worker's deque: a contiguous sub-range [lo, hi) of the
// statement's index space. Bottom (lo side) is popped by the owner; the
// top half is removed by thieves. Deques live in one contiguous slice,
// so each is padded out to two cache lines: without the padding every
// owner pop dirties its neighbours' lines and the per-chunk mutex
// traffic ping-pongs between cores even when no stealing happens.
type wdeque struct {
	mu     sync.Mutex
	lo, hi int
	_      [128 - 24]byte
}

// pop removes up to g indices from the bottom of the range.
func (d *wdeque) pop(g int) (lo, hi int, ok bool) {
	d.mu.Lock()
	if d.lo >= d.hi {
		d.mu.Unlock()
		return 0, 0, false
	}
	lo = d.lo
	hi = lo + g
	if hi > d.hi {
		hi = d.hi
	}
	d.lo = hi
	d.mu.Unlock()
	return lo, hi, true
}

// steal removes the top half of the remaining range (all of it when only
// one index remains).
func (d *wdeque) steal() (lo, hi int, ok bool) {
	d.mu.Lock()
	n := d.hi - d.lo
	if n <= 0 {
		d.mu.Unlock()
		return 0, 0, false
	}
	mid := d.lo + n/2 // n == 1 → mid == lo: the thief takes the lone index
	lo, hi = mid, d.hi
	d.hi = mid
	d.mu.Unlock()
	return lo, hi, true
}

// install replaces the worker's (empty) range with a stolen one.
func (d *wdeque) install(lo, hi int) {
	d.mu.Lock()
	d.lo, d.hi = lo, hi
	d.mu.Unlock()
}

// workerStats is one worker's contribution to a statement's observability
// counters, written only by that worker during the statement and
// aggregated by the caller at the barrier — the workers themselves never
// touch a shared counter mid-statement. Entries are adjacent in one
// slice, so each is padded out to two cache lines; workers update busy
// and elems on every chunk, and unpadded entries would false-share those
// writes across all cores.
type workerStats struct {
	busy      time.Duration // time spent executing body chunks
	finish    time.Duration // time from statement start until the worker exited
	stealWait time.Duration // time spent hunting for work (failed pops to acquired steal, plus the final empty scan)
	steals    int64
	elems     int
	_         [128 - 40]byte
}

// aggregate folds the per-worker breakdown into one statement
// measurement at the barrier: sums, the critical path (slowest worker's
// finish) and the residual imbalance (everyone's wait for that worker).
func aggregate(ws []workerStats) stmtStats {
	var st stmtStats
	var maxFinish time.Duration
	for i := range ws {
		st.busy += ws[i].busy
		st.steals += ws[i].steals
		st.stealWait += ws[i].stealWait
		if ws[i].finish > maxFinish {
			maxFinish = ws[i].finish
		}
	}
	for i := range ws {
		st.barrierWait += maxFinish - ws[i].finish
	}
	st.span = maxFinish
	return st
}

// runSpawn executes body over [0, n) on w workers (the caller is worker
// 0) with chunk size g: the legacy dispatcher that allocates fresh
// deque/stat slices and spawns w-1 goroutines for every statement, with
// exact per-chunk timing. Machines use the resident pool (wpool.go)
// unless WithSpawnDispatch pins them here; E14 measures the difference.
// start is the statement's start instant, taken by the caller so traced
// spans and worker finish times share one zero point. done, when
// non-nil, is a cancellation signal: workers stop taking new chunks once
// it is closed (the orchestrator detects the resulting incomplete
// statement at the barrier and unwinds — see Machine.checkpoint).
func runSpawn(n, w, g int, body func(lo, hi int), done <-chan struct{}, start time.Time) (stmtStats, []workerStats) {
	dq := make([]wdeque, w)
	partition(dq, n, w)

	ws := make([]workerStats, w)
	var wg sync.WaitGroup
	spawnedWorkers.Add(int64(w - 1))
	for i := 1; i < w; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			worker(id, dq, g, body, &ws[id], start, done, true)
		}(i)
	}
	worker(0, dq, g, body, &ws[0], start, done, true)
	wg.Wait()

	return aggregate(ws), ws
}

// partition installs the statement's even initial split: one contiguous
// range of ⌈n/w⌉ indices per worker.
func partition(dq []wdeque, n, w int) {
	chunk := (n + w - 1) / w
	for i := 0; i < w; i++ {
		lo := i * chunk
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		if lo > hi {
			lo = hi
		}
		dq[i].lo, dq[i].hi = lo, hi
	}
}

// worker is the per-goroutine scheduling loop: drain own deque, then
// steal, until a full victim scan comes up empty. A stolen range's first
// grain is executed before anything else can steal it back (see the
// package comment on livelock freedom).
//
// exact selects the timing discipline. Exact — required when a tracer is
// armed, and the legacy dispatcher's only mode — brackets every body
// chunk and every steal hunt with clock reads, so per-worker busy time
// is precise at two time.Now() calls per chunk. Amortized (exact=false,
// the disarmed default) reads the clock twice per worker plus once per
// steal hunt: busy is the worker's wall time minus its measured steal
// waits (the final empty-handed scan is absorbed into busy), so the
// measured Stats fields become approximate-but-monotone while counted
// steps/work/steals/elems stay exact. For the small statements that
// dominate service traffic the clock reads are the dispatch hot path —
// see EXPERIMENTS.md E14.
func worker(id int, dq []wdeque, g int, body func(lo, hi int), ws *workerStats, start time.Time, done <-chan struct{}, exact bool) {
	seed := uint32(id)*2654435761 + 1
	t0 := start
	if !exact {
		t0 = time.Now()
	}
	for {
		if done != nil {
			select {
			case <-done:
				// Cooperative bail before the next pop or steal. No panic
				// here — a panic on a worker goroutine would kill the
				// process; leftover chunks are abandoned and the
				// orchestrator aborts at the barrier.
				finish(ws, start, t0, exact)
				return
			default:
			}
		}
		lo, hi, ok := dq[id].pop(g)
		if !ok {
			// Everything from here until work is in hand again is the
			// contention probe: time this worker spends scanning victims
			// instead of executing bodies. Amortized mode skips the
			// closing clock read on the final empty-handed scan.
			h := time.Now()
			lo, hi, ok = steal(id, dq, &seed)
			if exact {
				ws.stealWait += time.Since(h)
			}
			if !ok {
				break
			}
			if !exact {
				ws.stealWait += time.Since(h)
			}
			ws.steals++
			if hi-lo > g {
				// Park the remainder where other thieves can find it;
				// our own deque is empty (pop just failed and only we
				// install into it).
				dq[id].install(lo+g, hi)
				hi = lo + g
			}
		}
		if exact {
			tc := time.Now()
			body(lo, hi)
			ws.busy += time.Since(tc)
		} else {
			body(lo, hi)
		}
		ws.elems += hi - lo
	}
	finish(ws, start, t0, exact)
}

// finish closes out a worker's timing. Amortized mode derives busy from
// the worker's own wall time so the loop above never touched the clock
// per chunk; finish stays relative to the statement's start instant in
// both modes so barrier-wait aggregation is uniform.
func finish(ws *workerStats, start, t0 time.Time, exact bool) {
	if exact {
		ws.finish = time.Since(start)
		return
	}
	total := time.Since(t0)
	busy := total - ws.stealWait
	if busy < 0 {
		busy = 0
	}
	ws.busy = busy
	ws.finish = t0.Sub(start) + total
}

// steal scans the other deques from a pseudo-random start and returns the
// first successfully stolen range.
func steal(id int, dq []wdeque, seed *uint32) (int, int, bool) {
	n := len(dq)
	off := int(xorshift32(seed) % uint32(n))
	for t := 0; t < n; t++ {
		v := off + t
		if v >= n {
			v -= n
		}
		if v == id {
			continue
		}
		if lo, hi, ok := dq[v].steal(); ok {
			return lo, hi, true
		}
	}
	return 0, 0, false
}

// xorshift32 is a tiny deterministic PRNG for victim selection; seeding
// by worker id keeps schedules reproducible enough to debug while still
// spreading contention.
func xorshift32(s *uint32) uint32 {
	x := *s
	x ^= x << 13
	x ^= x >> 17
	x ^= x << 5
	*s = x
	return x
}
