package pram

import (
	"fmt"
	"testing"
	"time"
)

// BenchmarkDispatch measures the cost of one small parallel statement
// under both dispatchers — the number E14 gates. Run with:
//
//	go test -bench Dispatch -run xxx ./internal/pram
func BenchmarkDispatch(b *testing.B) {
	for _, shape := range []struct{ w, n, g int }{
		{2, 64, 1}, // the E14 shape: service-style small statement, one index per chunk
		{4, 64, 8},
		{4, 256, 8},
	} {
		buf := make([]int64, shape.n)
		body := func(i int) { buf[i]++ }
		for _, spawn := range []bool{true, false} {
			name := fmt.Sprintf("w%d/n%d/g%d/spawn=%v", shape.w, shape.n, shape.g, spawn)
			b.Run(name, func(b *testing.B) {
				opts := []Option{WithWorkers(shape.w), WithGrain(shape.g), WithIdleTimeout(time.Minute)}
				if spawn {
					opts = append(opts, WithSpawnDispatch())
				}
				m := New(opts...)
				defer m.Close()
				m.For(shape.n, body)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					m.For(shape.n, body)
				}
			})
		}
	}
}
