package pram

import (
	"sync"
	"sync/atomic"
	"time"
)

// Resident worker pool: the default dispatcher behind Machine.For.
//
// A Machine lazily builds one wpool on its first parallel statement. The
// pool owns the padded deque and stat slices (allocated once, reused by
// every statement) and up to workers-1 resident goroutines, so
// steady-state dispatch allocates nothing and spawns nothing: the
// orchestrator publishes the statement's parameters, wakes each parked
// worker with a one-token channel send, runs as worker 0 itself, and
// waits on the statement barrier. Workers park again immediately after
// the barrier.
//
// Each resident worker has a slot with a three-state lifecycle:
//
//	slotEmpty   no goroutine; the next statement spawns one
//	slotParked  goroutine blocked in a select awaiting wake/quit/idle
//	slotRunning goroutine woken for (or executing) a statement
//
// The orchestrator wakes a slot by CASing parked→running and sending the
// wake token; if the CAS fails the slot is empty (first use, or the
// worker retired) and a fresh goroutine is spawned for it. A parked
// worker retires by CASing parked→empty when its idle timer shows no
// statement has run for a full timeout window; if that CAS loses to a
// concurrent waker the worker instead consumes the wake token and runs
// the statement. The idle timer is checked, not re-armed, per statement:
// it fires every timeout period and the worker retires only when no
// statement ran during the whole window, so parking costs zero timer
// operations on the dispatch path and an idle pool drains to zero
// goroutines within two timeout periods.
//
// Memory visibility: the statement parameters (body, grain, width, done,
// start, exact) are plain fields written by the orchestrator before the
// wake send and read by the worker after the wake receive; the channel
// send/receive pair (or the go statement, for a fresh spawn) is the
// happens-before edge. The barrier's wg.Done/Wait edge makes the
// workers' stat writes visible to the orchestrator's aggregation.
//
// Statements never run concurrently on one Machine (Machine.running
// enforces that), so the orchestrator is the only waker and close never
// races a statement.

// idleTimeoutDefault is how long a resident worker may sit parked with
// no statements before its goroutine exits. Chosen well under the
// multi-second deadlines of the goroutine-leak tests while long enough
// that any live traffic keeps the pool warm.
const idleTimeoutDefault = 200 * time.Millisecond

const (
	slotEmpty   int32 = iota // no goroutine attached to the slot
	slotParked               // goroutine parked awaiting wake, quit, or idle retire
	slotRunning              // goroutine woken for / executing a statement
)

// wslot is one resident worker's parking state. Slots sit in one
// contiguous slice and the state word is CASed by both orchestrator and
// worker, so each slot is padded out to two cache lines like the deques.
type wslot struct {
	state atomic.Int32
	wake  chan struct{} // buffered 1: the orchestrator's statement token
	_     [128 - 16]byte
}

// wpool carries a Machine's resident dispatch state. Slot i hosts worker
// id i+1; worker 0 is always the orchestrating goroutine itself.
type wpool struct {
	workers int           // capacity: max workers a statement may use
	idle    time.Duration // park time after which a worker retires

	// Per-statement parameters, published by the orchestrator before the
	// wakes (see the memory-visibility note above).
	wStmt int // this statement's worker count (≤ workers)
	g     int
	exact bool
	body  func(lo, hi int)
	done  <-chan struct{}
	start time.Time

	dq    []wdeque
	ws    []workerStats
	slots []wslot

	wg     sync.WaitGroup // statement barrier: one count per woken worker
	lifeWG sync.WaitGroup // one count per live resident goroutine
	quit   chan struct{}  // closed by close() to drop parked workers
}

func newWPool(workers int, idle time.Duration) *wpool {
	p := &wpool{
		workers: workers,
		idle:    idle,
		dq:      make([]wdeque, workers),
		ws:      make([]workerStats, workers),
		slots:   make([]wslot, workers-1),
		quit:    make(chan struct{}),
	}
	for i := range p.slots {
		p.slots[i].wake = make(chan struct{}, 1)
	}
	return p
}

// run executes one parallel statement on w ≤ p.workers workers with the
// same contract as runSpawn, reusing the pool's slices and goroutines.
func (p *wpool) run(n, w, g int, body func(lo, hi int), done <-chan struct{}, start time.Time, exact bool) (stmtStats, []workerStats) {
	partition(p.dq[:w], n, w)
	// Deques beyond this statement's width must read empty to thieves: a
	// narrower statement after a cancelled wider one would otherwise
	// expose the aborted statement's leftover ranges. (Indices < w are
	// overwritten by partition; these are the stale tail.)
	for i := w; i < p.workers; i++ {
		p.dq[i].lo, p.dq[i].hi = 0, 0
	}
	for i := 0; i < w; i++ {
		p.ws[i] = workerStats{}
	}
	p.wStmt, p.g, p.exact = w, g, exact
	p.body, p.done, p.start = body, done, start

	p.wg.Add(w - 1)
	for s := 0; s < w-1; s++ {
		p.wakeSlot(s)
	}
	worker(0, p.dq[:w], g, body, &p.ws[0], start, done, exact)
	p.wg.Wait()

	return aggregate(p.ws[:w]), p.ws[:w]
}

// wakeSlot hands the pending statement to slot s's resident goroutine,
// spawning one if the slot is empty.
func (p *wpool) wakeSlot(s int) {
	sl := &p.slots[s]
	if sl.state.CompareAndSwap(slotParked, slotRunning) {
		sl.wake <- struct{}{}
		return
	}
	// The CAS can only lose to the worker's own retire (parked→empty) or
	// find the slot never started: either way the slot is empty now and
	// this orchestrator is the only writer until the next statement.
	sl.state.Store(slotRunning)
	spawnedWorkers.Add(1)
	p.lifeWG.Add(1)
	go p.resident(s)
}

// resident is the long-lived loop of slot s's goroutine (worker id s+1):
// execute the published statement, park, repeat — until told to quit or
// idle for a full timeout window.
func (p *wpool) resident(s int) {
	defer p.lifeWG.Done()
	id := s + 1
	sl := &p.slots[s]
	timer := time.NewTimer(p.idle)
	defer timer.Stop()
	active := true // did a statement run since the timer last fired?
	for {
		worker(id, p.dq[:p.wStmt], p.g, p.body, &p.ws[id], p.start, p.done, p.exact)
		sl.state.Store(slotParked) // must precede Done: after the barrier the orchestrator may wake us again
		p.wg.Done()
		active = true
	park:
		select {
		case <-sl.wake:
			// Next statement; parameters are visible via the channel edge.
		case <-timer.C:
			if active {
				// Work happened during this window — re-arm and keep
				// parking. This is the only place the timer is touched
				// after spawn, so busy statements never pay for it.
				active = false
				timer.Reset(p.idle)
				goto park
			}
			if sl.state.CompareAndSwap(slotParked, slotEmpty) {
				return // idled out; the next statement respawns us
			}
			// A waker beat the retire: its token is (or is about to be)
			// in the channel. Consume it and run that statement.
			<-sl.wake
		case <-p.quit:
			return
		}
	}
}

// close drops every resident goroutine and waits for them to exit. It
// must not run concurrently with a statement on the same Machine. The
// pool remains usable: slots reset to empty and the next statement
// respawns workers lazily.
func (p *wpool) close() {
	close(p.quit)
	p.lifeWG.Wait()
	for i := range p.slots {
		p.slots[i].state.Store(slotEmpty)
		// Drop any unconsumed wake token so a recycled slot's first wake
		// after respawn isn't mistaken for two statements. (Can only be
		// non-empty if a worker quit between a wake send and its receive,
		// which the no-concurrent-statement contract excludes — drain
		// defensively anyway.)
		select {
		case <-p.slots[i].wake:
		default:
		}
	}
	p.quit = make(chan struct{})
}
