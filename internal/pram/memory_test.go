package pram

import (
	"strings"
	"testing"
)

func TestTraceMemoryCommitAtBarrier(t *testing.T) {
	mem := NewTraceMemory(EREW, 4)
	mem.Write(0, 42)
	// Before the barrier the old value is visible (synchronous semantics).
	if got := mem.Read(0); got != 0 {
		t.Errorf("pre-barrier read = %v, want 0", got)
	}
	mem.EndStep()
	mem.EndStep() // extra barrier with no accesses is harmless
	if got := mem.Read(0); got != 42 {
		t.Errorf("post-barrier read = %v, want 42", got)
	}
	// The pre-barrier read of cell 0 above plus this one are in different
	// steps, so no EREW violation should be recorded.
	mem.EndStep()
	if v := mem.Violations(); len(v) != 0 {
		t.Errorf("unexpected violations: %v", v)
	}
}

func TestTraceMemoryEREWDetectsConcurrentRead(t *testing.T) {
	mem := NewTraceMemory(EREW, 2)
	mem.Read(1)
	mem.Read(1)
	mem.EndStep()
	v := mem.Violations()
	if len(v) != 1 || v[0].Kind != "concurrent-read" || v[0].Cell != 1 {
		t.Fatalf("violations = %v, want one concurrent-read on cell 1", v)
	}
	if !strings.Contains(v[0].String(), "concurrent-read") {
		t.Errorf("violation String() = %q", v[0].String())
	}
}

func TestTraceMemoryCREWAllowsConcurrentRead(t *testing.T) {
	mem := NewTraceMemory(CREW, 2)
	mem.Read(1)
	mem.Read(1)
	mem.Read(1)
	mem.EndStep()
	if v := mem.Violations(); len(v) != 0 {
		t.Errorf("CREW should allow concurrent reads, got %v", v)
	}
}

func TestTraceMemoryCREWDetectsConcurrentWrite(t *testing.T) {
	mem := NewTraceMemory(CREW, 2)
	mem.Write(0, 1)
	mem.Write(0, 2)
	mem.EndStep()
	v := mem.Violations()
	if len(v) != 1 || v[0].Kind != "concurrent-write" {
		t.Fatalf("violations = %v, want one concurrent-write", v)
	}
}

func TestTraceMemoryCRCWCommon(t *testing.T) {
	mem := NewTraceMemory(CRCWCommon, 2)
	mem.Write(0, 7)
	mem.Write(0, 7) // same value: allowed under common CRCW
	mem.EndStep()
	if v := mem.Violations(); len(v) != 0 {
		t.Errorf("common-value concurrent write should be allowed, got %v", v)
	}
	if got := mem.Read(0); got != 7 {
		t.Errorf("committed value = %v, want 7", got)
	}
	mem.EndStep()
	mem.Write(1, 1)
	mem.Write(1, 2) // differing values: violation
	mem.EndStep()
	v := mem.Violations()
	if len(v) != 1 || v[0].Kind != "inconsistent-write" {
		t.Fatalf("violations = %v, want one inconsistent-write", v)
	}
}

func TestTraceMemorySnapshotAndLen(t *testing.T) {
	mem := NewTraceMemory(CREW, 3)
	mem.Write(2, 9)
	mem.EndStep()
	snap := mem.Snapshot()
	if mem.Len() != 3 || len(snap) != 3 || snap[2] != 9 || snap[0] != 0 {
		t.Errorf("snapshot = %v", snap)
	}
	snap[0] = 100 // must be a copy
	if mem.Read(0) != 0 {
		t.Error("Snapshot must return a copy")
	}
}

func TestTraceMemoryConcurrentAccessSafe(t *testing.T) {
	mem := NewTraceMemory(CREW, 64)
	m := New(WithWorkers(8), WithGrain(1))
	m.For(64, func(i int) { mem.Write(i, float64(i)) })
	mem.EndStep()
	m.For(64, func(i int) {
		if mem.Read(i) != float64(i) {
			t.Errorf("cell %d wrong", i)
		}
	})
	mem.EndStep()
	if v := mem.Violations(); len(v) != 0 {
		t.Errorf("disjoint parallel accesses should be clean, got %v", v)
	}
}
