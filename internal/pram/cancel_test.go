package pram

import (
	"context"
	"errors"
	"runtime"
	"sync/atomic"
	"testing"
	"time"
)

func TestRunWithoutContextCompletes(t *testing.T) {
	m := New(WithWorkers(4))
	var sum atomic.Int64
	err := m.Run(func() {
		m.For(1000, func(i int) { sum.Add(int64(i)) })
	})
	if err != nil {
		t.Fatalf("Run = %v, want nil", err)
	}
	if want := int64(1000 * 999 / 2); sum.Load() != want {
		t.Fatalf("sum = %d, want %d", sum.Load(), want)
	}
}

func TestSetContextIgnoresUncancelable(t *testing.T) {
	m := New()
	m.SetContext(context.Background())
	if m.ctx != nil {
		t.Fatal("Background context was attached; want ignored (Done() == nil)")
	}
	m.SetContext(nil)
	if m.ctx != nil {
		t.Fatal("nil context not detached")
	}
}

func TestPreCanceledContextAbortsBeforeAnyIteration(t *testing.T) {
	m := New(WithWorkers(4))
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	m.SetContext(ctx)
	ran := false
	err := m.Run(func() {
		m.For(100, func(i int) { ran = true })
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("Run = %v, want context.Canceled", err)
	}
	if ran {
		t.Fatal("body ran despite pre-canceled context")
	}
}

func TestDeadlineExceededSurfaces(t *testing.T) {
	m := New(WithWorkers(2))
	ctx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
	defer cancel()
	m.SetContext(ctx)
	err := m.Run(func() {
		for {
			m.For(1024, func(i int) { time.Sleep(10 * time.Microsecond) })
		}
	})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Run = %v, want context.DeadlineExceeded", err)
	}
}

// TestCancelMidStatementSerial exercises the w==1 fast path's chunked
// polling: cancellation fires from inside the body and must cut the
// statement within one grain, not run all n iterations.
func TestCancelMidStatementSerial(t *testing.T) {
	m := New(WithWorkers(1), WithGrain(32))
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	m.SetContext(ctx)
	const n = 1 << 20
	var executed int
	err := m.Run(func() {
		m.For(n, func(i int) {
			executed++
			if executed == 100 {
				cancel()
			}
		})
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("Run = %v, want context.Canceled", err)
	}
	// 100 iterations trigger the cancel; the current grain (32) may finish
	// plus at most one more chunk boundary check. Be generous but strict
	// enough to prove the statement did not run to completion.
	if executed >= n {
		t.Fatalf("executed all %d iterations despite cancellation", executed)
	}
	if executed > 100+2*32 {
		t.Fatalf("executed %d iterations after cancel; want cut within one grain", executed)
	}
}

// TestCancelMidStatementParallel cancels while workers are executing a
// skewed statement and asserts the barrier aborts, workers bail, and no
// goroutines leak.
func TestCancelMidStatementParallel(t *testing.T) {
	before := runtime.NumGoroutine()
	m := New(WithWorkers(4), WithGrain(8))
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	m.SetContext(ctx)
	var executed atomic.Int64
	err := m.Run(func() {
		m.For(1<<20, func(i int) {
			if executed.Add(1) == 50 {
				cancel()
			}
		})
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("Run = %v, want context.Canceled", err)
	}
	if n := executed.Load(); n >= 1<<20 {
		t.Fatalf("all %d iterations ran despite cancellation", n)
	}
	waitForGoroutines(t, before)
}

// TestCancelForRange checks the chunked (ForRange) path unwinds too.
func TestCancelForRange(t *testing.T) {
	m := New(WithWorkers(4), WithGrain(8))
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	m.SetContext(ctx)
	var calls atomic.Int64
	err := m.Run(func() {
		for {
			m.ForRange(1<<16, func(lo, hi int) {
				if calls.Add(1) == 3 {
					cancel()
				}
			})
		}
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("Run = %v, want context.Canceled", err)
	}
}

// TestCanceledHelperVisibleFromBodies checks the cooperative helpers
// worker bodies use to skip work without panicking.
func TestCanceledHelperVisibleFromBodies(t *testing.T) {
	m := New(WithWorkers(2))
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	m.SetContext(ctx)
	if m.Canceled() || m.Err() != nil {
		t.Fatal("machine canceled before its context")
	}
	cancel()
	if !m.Canceled() || !errors.Is(m.Err(), context.Canceled) {
		t.Fatal("Canceled()/Err() did not observe the canceled context")
	}
}

// TestRunPassesForeignPanics: only the internal abort panic is converted
// to an error; kernel bugs keep panicking.
func TestRunPassesForeignPanics(t *testing.T) {
	m := New()
	defer func() {
		if r := recover(); r != "boom" {
			t.Fatalf("recovered %v, want \"boom\"", r)
		}
	}()
	_ = m.Run(func() { panic("boom") })
	t.Fatal("Run swallowed a foreign panic")
}

// TestCancelAfterAbortMachineReusableForStats: Stats() on an aborted
// machine must not deadlock or panic (callers read stats for logging
// before discarding the machine).
func TestCancelAfterAbortMachineStats(t *testing.T) {
	m := New(WithWorkers(2), WithGrain(4))
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	m.SetContext(ctx)
	_ = m.Run(func() { m.For(100, func(int) {}) })
	_ = m.Stats()
	_ = m.Counters()
}

// TestCheckpointsUncounted: a canceled-then-aborted statement books no
// steps or work, and checkpoints on the happy path cost nothing counted.
func TestCheckpointsUncounted(t *testing.T) {
	plain := New(WithProcessors(4), WithWorkers(2))
	plain.For(100, func(int) {})
	want := plain.Counters()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	withCtx := New(WithProcessors(4), WithWorkers(2))
	withCtx.SetContext(ctx)
	if err := withCtx.Run(func() { withCtx.For(100, func(int) {}) }); err != nil {
		t.Fatalf("Run = %v", err)
	}
	if got := withCtx.Counters(); got.Steps != want.Steps || got.Work != want.Work || got.Calls != want.Calls {
		t.Fatalf("counters with context = %+v, want %+v (checkpoints must be uncounted)", got, want)
	}

	aborted := New(WithProcessors(4), WithWorkers(2))
	actx, acancel := context.WithCancel(context.Background())
	acancel()
	aborted.SetContext(actx)
	_ = aborted.Run(func() { aborted.For(100, func(int) {}) })
	if got := aborted.Counters(); got.Steps != 0 || got.Work != 0 || got.Calls != 0 {
		t.Fatalf("aborted statement booked cost %+v, want zero", got)
	}
}

// waitForGoroutines polls until the goroutine count returns to (at most)
// the baseline, tolerating runtime background noise, and fails after 5s.
func waitForGoroutines(t *testing.T, baseline int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		if runtime.NumGoroutine() <= baseline+2 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d now vs %d baseline", runtime.NumGoroutine(), baseline)
		}
		time.Sleep(5 * time.Millisecond)
	}
}
