//go:build !race

package pram

const raceEnabled = false
