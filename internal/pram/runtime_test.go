package pram

import (
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"
	"time"
	"unsafe"
)

// spin burns roughly ns nanoseconds of CPU per call without touching the
// clock (the adaptive controller must not see its own measurement cost).
func spin(iters int) float64 {
	x := 1.0
	for i := 0; i < iters; i++ {
		x += 1.0 / x
	}
	return x
}

var spinSink atomic.Int64

// TestAdaptiveGrainConverges drives the controller with uniform workloads
// at two very different per-element costs and checks the chosen grain
// moves the right way: expensive bodies get small chunks (stealing can
// rebalance), near-free bodies get large chunks (overhead amortized).
func TestAdaptiveGrainConverges(t *testing.T) {
	if testing.Short() {
		t.Skip("timing-dependent")
	}
	if raceEnabled {
		// The controller compares measured ns/element against an absolute
		// target; race instrumentation inflates the "cheap" body past the
		// threshold that makes the grain grow, so the direction assertions
		// are meaningless under -race (flaky at seed on slow hosts).
		t.Skip("timing-dependent: race instrumentation skews per-element cost")
	}
	expensive := New() // adaptive
	for r := 0; r < 8; r++ {
		expensive.For(1<<12, func(i int) {
			spinSink.Add(int64(spin(2000))) // ≈ a few µs per element
		})
	}
	if g := expensive.Grain(); g >= grainDefault {
		t.Errorf("grain after expensive workload = %d, want < default %d", g, grainDefault)
	}

	cheap := New()
	for r := 0; r < 8; r++ {
		cheap.For(1<<16, func(i int) { spinSink.Add(1) })
	}
	if g := cheap.Grain(); g <= grainDefault {
		t.Errorf("grain after cheap workload = %d, want > default %d", g, grainDefault)
	}

	// Uniform workload: once calibrated, successive statements must not
	// swing the grain wildly (EWMA stability).
	m := New()
	for r := 0; r < 6; r++ {
		m.For(1<<12, func(i int) { spinSink.Add(int64(spin(500))) })
	}
	g1 := m.Grain()
	for r := 0; r < 4; r++ {
		m.For(1<<12, func(i int) { spinSink.Add(int64(spin(500))) })
	}
	g2 := m.Grain()
	if g1 < grainMin || g1 > grainMax || g2 < grainMin || g2 > grainMax {
		t.Fatalf("grain out of bounds: %d, %d", g1, g2)
	}
	if g2 > 8*g1 || g1 > 8*g2 {
		t.Errorf("grain unstable on uniform workload: %d then %d", g1, g2)
	}
}

// TestGrainPinnedByWithGrain checks WithGrain disables the controller.
func TestGrainPinnedByWithGrain(t *testing.T) {
	m := New(WithGrain(7))
	for r := 0; r < 4; r++ {
		m.For(1<<12, func(i int) { spinSink.Add(1) })
	}
	if g := m.Grain(); g != 7 {
		t.Errorf("pinned grain drifted: got %d, want 7", g)
	}
	if g := m.Stats().Grain; g != 7 {
		t.Errorf("Stats().Grain = %d, want 7", g)
	}
}

// TestStatsExactForReductionShape checks the counted Steps/Work/Calls for
// a balanced binary reduction over n=1024 on an unbounded-processor
// machine: ⌈log₂ 1024⌉ = 10 statements of one step each, 1023 total
// combining operations.
func TestStatsExactForReductionShape(t *testing.T) {
	m := New(WithWorkers(2), WithGrain(4))
	done := m.Phase("reduce")
	n := 1024
	buf := make([]int, n)
	for i := range buf {
		buf[i] = 1
	}
	for width := 1; width < n; width <<= 1 {
		w := width
		pairs := (n - w + 2*w - 1) / (2 * w)
		m.For(pairs, func(p int) {
			i := p * 2 * w
			if i+w < n {
				buf[i] += buf[i+w]
			}
		})
	}
	done()
	if buf[0] != n {
		t.Fatalf("reduction result = %d, want %d", buf[0], n)
	}
	st := m.Stats()
	ps, ok := st.Phases["reduce"]
	if !ok {
		t.Fatal("phase \"reduce\" missing from Stats")
	}
	if ps.Steps != 10 || ps.Calls != 10 {
		t.Errorf("reduction phase: Steps=%d Calls=%d, want 10 and 10", ps.Steps, ps.Calls)
	}
	if ps.Work != 1023 {
		t.Errorf("reduction phase: Work=%d, want 1023", ps.Work)
	}
	if st.Steps != ps.Steps || st.Work != ps.Work || st.Calls != ps.Calls {
		t.Errorf("totals %+v disagree with single phase %+v", st.PhaseStats, ps)
	}
}

// TestPhaseNestingAndAttribution checks the innermost Phase label wins and
// the restore closure reinstates the outer label.
func TestPhaseNestingAndAttribution(t *testing.T) {
	m := New()
	m.For(10, func(int) {}) // unlabeled

	outer := m.Phase("outer")
	m.For(20, func(int) {})
	inner := m.Phase("inner")
	m.For(30, func(int) {})
	m.Step(5)
	inner()
	m.For(40, func(int) {})
	outer()

	st := m.Stats()
	if w := st.Phases[""].Work; w != 10 {
		t.Errorf("unlabeled work = %d, want 10", w)
	}
	if w := st.Phases["outer"].Work; w != 60 {
		t.Errorf("outer work = %d, want 60", w)
	}
	if w := st.Phases["inner"].Work; w != 35 {
		t.Errorf("inner work = %d, want 35 (30 + Step 5)", w)
	}
	if st.Work != 105 || st.Steps != 9 || st.Calls != 4 {
		t.Errorf("totals = %+v, want Work 105, Steps 9, Calls 4", st.PhaseStats)
	}
	names := st.PhaseNames()
	want := []string{"", "inner", "outer"}
	if len(names) != len(want) {
		t.Fatalf("PhaseNames = %v, want %v", names, want)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("PhaseNames = %v, want %v", names, want)
		}
	}
}

// TestBrentStepsWithPhases checks Steps under a bounded processor count
// still follows ⌈n/p⌉ per statement when booked through a phase.
func TestBrentStepsWithPhases(t *testing.T) {
	m := New(WithProcessors(4))
	defer m.Phase("p")()
	m.For(1024, func(int) {})
	m.For(5, func(int) {})
	st := m.Stats()
	if got, want := st.Phases["p"].Steps, int64(256+2); got != want {
		t.Errorf("Steps = %d, want %d", got, want)
	}
}

// TestForMatchesSerialLoop runs the work-stealing For against the serial
// loop for every combination of GOMAXPROCS ∈ {1,2,8}, workers ∈ {1,2,4,8}
// and a grain small enough to force heavy stealing, checking each index
// is executed exactly once with the right value.
func TestForMatchesSerialLoop(t *testing.T) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(0))
	const n = 10_000
	want := make([]int64, n)
	for i := range want {
		want[i] = int64(i)*3 + 1
	}
	for _, procs := range []int{1, 2, 8} {
		runtime.GOMAXPROCS(procs)
		for _, w := range []int{1, 2, 4, 8} {
			for _, g := range []int{1, 3, 64} {
				t.Run(fmt.Sprintf("gomaxprocs=%d/workers=%d/grain=%d", procs, w, g), func(t *testing.T) {
					m := New(WithWorkers(w), WithGrain(g))
					counts := make([]int32, n)
					out := make([]int64, n)
					m.For(n, func(i int) {
						atomic.AddInt32(&counts[i], 1)
						out[i] = int64(i)*3 + 1
					})
					for i := 0; i < n; i++ {
						if counts[i] != 1 {
							t.Fatalf("index %d executed %d times", i, counts[i])
						}
						if out[i] != want[i] {
							t.Fatalf("out[%d] = %d, want %d", i, out[i], want[i])
						}
					}
				})
			}
		}
	}
}

// TestForRangeCoversOnceUnderStealing checks ForRange's chunked contract:
// the issued sub-ranges tile [0, n) exactly, whatever the schedule.
func TestForRangeCoversOnceUnderStealing(t *testing.T) {
	const n = 4096
	m := New(WithWorkers(8), WithGrain(2))
	counts := make([]int32, n)
	var calls atomic.Int32
	m.ForRange(n, func(lo, hi int) {
		calls.Add(1)
		if lo < 0 || hi > n || lo >= hi {
			panic(fmt.Sprintf("bad range [%d,%d)", lo, hi))
		}
		for i := lo; i < hi; i++ {
			atomic.AddInt32(&counts[i], 1)
		}
	})
	for i, c := range counts {
		if c != 1 {
			t.Fatalf("index %d covered %d times", i, c)
		}
	}
	if calls.Load() < 2 {
		t.Errorf("expected multiple chunked calls, got %d", calls.Load())
	}
}

// TestStealsObserved forces an imbalanced statement — one worker's range
// starts with a long sleep — so whichever worker finishes first must
// steal, and checks the Stats counters see it.
func TestStealsObserved(t *testing.T) {
	m := New(WithWorkers(2), WithGrain(1))
	const n = 64
	m.For(n, func(i int) {
		if i == n/2 { // first index of worker 1's initial range
			time.Sleep(5 * time.Millisecond)
		}
	})
	st := m.Stats()
	if st.Steals == 0 {
		t.Error("expected at least one steal on a skewed statement")
	}
	if st.Span <= 0 || st.Span > 10*time.Second {
		t.Errorf("implausible span %v", st.Span)
	}
	if st.BarrierWait < 0 {
		t.Errorf("negative barrier wait %v", st.BarrierWait)
	}
	if st.Busy < 5*time.Millisecond {
		t.Errorf("busy %v should include the sleeping chunk", st.Busy)
	}
	if st.StealWait < 0 {
		t.Errorf("negative steal wait %v", st.StealWait)
	}
}

// TestStealWaitObserved forces workers to hunt for work — one worker's
// range carries all the cost, so the others spend the statement stealing
// — and checks the contention probe registers the hunt.
func TestStealWaitObserved(t *testing.T) {
	m := New(WithWorkers(4), WithGrain(1))
	const n = 256
	m.For(n, func(i int) {
		if i < n/4 { // worker 0's initial range: all the real work
			time.Sleep(100 * time.Microsecond)
		}
	})
	st := m.Stats()
	if st.Steals == 0 {
		t.Fatal("expected steals on a skewed statement")
	}
	if st.StealWait <= 0 {
		t.Errorf("steal wait %v; a statement with %d steals must accumulate hunt time", st.StealWait, st.Steals)
	}
	if st.StealWait > 10*time.Second {
		t.Errorf("implausible steal wait %v", st.StealWait)
	}
}

// TestSchedStructsPadded pins the cache-line padding of the per-worker
// scheduler structures: they live in contiguous slices, so their sizes
// must be multiples of 128 (two lines — adjacent-line prefetch pulls
// pairs) or every chunk pop and stat update false-shares with the
// neighbouring worker.
func TestSchedStructsPadded(t *testing.T) {
	if s := unsafe.Sizeof(wdeque{}); s%128 != 0 {
		t.Errorf("wdeque size %d is not a multiple of 128", s)
	}
	if s := unsafe.Sizeof(workerStats{}); s%128 != 0 {
		t.Errorf("workerStats size %d is not a multiple of 128", s)
	}
}

// TestResetKeepsCalibration checks Reset zeroes the counters and phases
// but keeps the adaptive controller's cost estimate.
func TestResetKeepsCalibration(t *testing.T) {
	m := New()
	for r := 0; r < 6; r++ {
		m.For(1<<12, func(i int) { spinSink.Add(int64(spin(1000))) })
	}
	gBefore := m.Grain()
	m.Reset()
	st := m.Stats()
	if st.Steps != 0 || st.Work != 0 || st.Calls != 0 || len(st.Phases) != 0 {
		t.Errorf("Reset left counters: %+v, phases %v", st.PhaseStats, st.PhaseNames())
	}
	if gAfter := m.Grain(); gAfter != gBefore {
		t.Errorf("Reset dropped grain calibration: %d → %d", gBefore, gAfter)
	}
}
