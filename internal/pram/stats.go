package pram

import (
	"math"
	"sort"
	"time"
)

// PhaseStats aggregates the cost and scheduler-observability counters of
// the parallel statements issued under one phase label.
//
// Steps, Work and Calls are the counted PRAM quantities (model-level:
// independent of the host), while Steals, Span, Busy and BarrierWait are
// measured on the executing hardware (scheduler-level: they quantify the
// constant factors the model hides).
type PhaseStats struct {
	// Steps is the number of counted parallel time steps: ⌈n/p⌉ per
	// statement over n virtual processors, plus sequential Step costs.
	Steps int64
	// Work is the total number of virtual-processor operations.
	Work int64
	// Calls is the number of parallel statements issued.
	Calls int64
	// Steals counts chunk-steal events between worker deques.
	Steals int64
	// Span estimates the critical path: the sum over statements of the
	// slowest worker's wall time. Span/Busy ≈ 1/w means perfect balance.
	Span time.Duration
	// Busy is the total time all workers spent executing statement bodies.
	Busy time.Duration
	// BarrierWait is the total time workers spent idle at statement
	// barriers waiting for the slowest worker — residual imbalance the
	// stealing could not hide.
	BarrierWait time.Duration
	// StealWait is the total time workers spent hunting for work —
	// scanning victim deques after their own ran dry, successful or not.
	// It is the runtime's contention probe: Busy-relative growth of
	// StealWait as workers are added means the statement is too fine-
	// grained (or too skewed) for the added cores to help.
	StealWait time.Duration
}

func (p *PhaseStats) add(o stmtStats) {
	p.Steals += o.steals
	p.Span += o.span
	p.Busy += o.busy
	p.BarrierWait += o.barrierWait
	p.StealWait += o.stealWait
}

// stmtStats is the measurement of a single executed statement.
type stmtStats struct {
	steals      int64
	span        time.Duration
	busy        time.Duration
	barrierWait time.Duration
	stealWait   time.Duration
}

// Stats is a snapshot of a Machine's accumulated accounting: the totals,
// the per-phase breakdown, and the grain the adaptive controller would
// use for the next large statement.
type Stats struct {
	PhaseStats
	// Grain is the chunk size the machine will hand each worker next: the
	// fixed WithGrain value, or the adaptive controller's current choice.
	Grain int
	// Phases maps phase label → that phase's counters. Statements issued
	// with no label are collected under "".
	Phases map[string]PhaseStats
}

// PhaseNames returns the snapshot's phase labels, sorted.
func (s Stats) PhaseNames() []string {
	names := make([]string, 0, len(s.Phases))
	for name := range s.Phases {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// Stats returns a snapshot of the accumulated cost and scheduler
// counters. It is safe to call concurrently with a running For (the
// snapshot then reflects all statements completed so far).
func (m *Machine) Stats() Stats {
	m.statsMu.Lock()
	defer m.statsMu.Unlock()
	out := Stats{
		PhaseStats: m.total,
		Grain:      m.grain(),
		Phases:     make(map[string]PhaseStats, len(m.phases)),
	}
	for name, ps := range m.phases {
		out.Phases[name] = *ps
	}
	return out
}

// Phase labels all subsequently issued statements with name until the
// returned restore function runs; typical use is
//
//	defer m.Phase("monge.MulPar")()
//
// at the top of a parallel primitive. Nested Phase calls shadow the outer
// label, so the innermost primitive attributes its own statements. The
// shadowed labels live on a stack inside the Machine and every call
// returns the same restore closure, so restores must run in LIFO order —
// which the defer idiom guarantees.
func (m *Machine) Phase(name string) func() {
	m.statsMu.Lock()
	m.phaseStack = append(m.phaseStack, m.phase)
	m.phase = name
	if m.tracer != nil {
		m.openPhaseSpan(name)
	}
	m.statsMu.Unlock()
	return m.restorePhase
}

// record books one statement's counted cost (steps/work/calls deltas) and
// measured scheduler stats into the current phase and the totals.
func (m *Machine) record(steps, work, calls int64, st stmtStats) {
	m.statsMu.Lock()
	m.total.Steps += steps
	m.total.Work += work
	m.total.Calls += calls
	m.total.add(st)
	ps, ok := m.phases[m.phase]
	if !ok {
		ps = &PhaseStats{}
		m.phases[m.phase] = ps
	}
	ps.Steps += steps
	ps.Work += work
	ps.Calls += calls
	ps.add(st)
	m.statsMu.Unlock()
}

// Adaptive grain control. The controller keeps an exponentially weighted
// moving average of the measured per-element cost (total worker busy time
// divided by iteration count) and sizes chunks so each pop from a deque
// carries about the machine's grain target of work (grainTargetNs by
// default, overridable per host via WithGrainTarget) — large enough to amortize the
// deque mutex and the two clock reads per chunk, small enough that
// stealing can still rebalance a skewed statement. WithGrain pins the
// grain and disables the controller.
//
// The EWMA lives in an atomic (float64 bits) so the orchestrator's For
// fast path reads the grain without touching statsMu — statements issued
// while another goroutine polls Stats() (the /statsz scrape path) never
// queue on the stats lock.
const (
	grainDefault  = 1024    // used until the first measurement lands
	grainMin      = 32      // never hand out slivers
	grainMax      = 1 << 16 // never let one pop starve the thieves
	grainTargetNs = 100_000 // default target: ≈100µs of work per chunk
	grainEWMA     = 0.3     // weight of the newest sample
	minSampleNs   = 0.1     // clock-resolution floor per element
)

// grain returns the chunk size for the next statement. Lock-free: reads
// only the immutable fixedGrain and the atomic EWMA.
func (m *Machine) grain() int {
	if m.fixedGrain > 0 {
		return m.fixedGrain
	}
	per := math.Float64frombits(m.nsPerElem.Load())
	if per == 0 {
		return grainDefault
	}
	g := int(m.grainTarget / per)
	if g < grainMin {
		return grainMin
	}
	if g > grainMax {
		return grainMax
	}
	return g
}

// observeCost feeds one statement's measured per-element cost into the
// EWMA (no-op under a fixed grain). Plain load/store suffices: the only
// writer is the orchestrating goroutine (For is non-concurrent per
// Machine); the atomic makes the concurrent readers (Grain, Stats) safe.
func (m *Machine) observeCost(n int, busy time.Duration) {
	if m.fixedGrain > 0 || n <= 0 {
		return
	}
	per := float64(busy) / float64(n)
	if per < minSampleNs {
		per = minSampleNs // zero-cost samples would drive the grain to +∞
	}
	if prev := math.Float64frombits(m.nsPerElem.Load()); prev != 0 {
		per = (1-grainEWMA)*prev + grainEWMA*per
	}
	m.nsPerElem.Store(math.Float64bits(per))
}
