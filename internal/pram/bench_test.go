package pram

import (
	"fmt"
	"math"
	"sync/atomic"
	"testing"
)

// BenchmarkForSpeedup measures the wall-clock throughput of one parallel
// statement as the worker count grows — the practical constant behind the
// simulated PRAM. The body does enough arithmetic per index to be
// compute-bound. Alongside the honest ns/op it reports the model-level
// counted-step speedup (steps at p=1 over steps at p=w, deterministic and
// host-independent) plus the scheduler's steal and barrier overhead, so
// runs on core-starved CI boxes still record the scaling trend.
func BenchmarkForSpeedup(b *testing.B) {
	const n = 1 << 18
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = float64(i%97) + 0.5
	}
	for _, w := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			m := New(WithWorkers(w), WithProcessors(w), WithGrain(1024))
			out := make([]float64, n)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				m.For(n, func(j int) {
					out[j] = math.Sqrt(xs[j]) * math.Log1p(xs[j])
				})
			}
			b.StopTimer()
			st := m.Stats()
			ops := float64(st.Calls)
			b.ReportMetric(float64(n)*ops/float64(st.Steps), "pram-speedup")
			b.ReportMetric(float64(st.Steals)/ops, "steals/op")
			b.ReportMetric(float64(st.BarrierWait.Nanoseconds())/ops, "barrier-ns/op")
		})
	}
}

// BenchmarkForOverhead measures the fixed cost of issuing tiny parallel
// statements (the per-statement barrier the polylog algorithms pay).
func BenchmarkForOverhead(b *testing.B) {
	m := New(WithGrain(64))
	var sink atomic.Int64
	for i := 0; i < b.N; i++ {
		m.For(8, func(j int) { sink.Add(1) })
	}
}
