package pram

import (
	"time"

	"partree/internal/trace"
)

// Tracing hooks. A Machine optionally carries a *trace.Trace; when it
// does, every Phase window closes into one phase span (counted
// steps/work/calls and measured steal/barrier/steal-wait deltas booked
// under that label while it was open) and every parallel statement emits
// one slice per executing worker, so the recorded timeline carries
// exactly the numbers Stats() aggregates. Disarmed — the default — the
// hooks cost one pointer compare per statement and per Phase call, the
// same discipline as internal/faultpoint; nothing is allocated.

// openSpan is one armed Phase window awaiting its restore: the label,
// the wall-clock open time, the phase's counters at open (so the close
// can emit deltas), and the phase-stack depth the window was opened at
// (so arming mid-run cannot desynchronize the two stacks).
type openSpan struct {
	label string
	depth int
	start time.Time
	at    PhaseStats
}

// SetTracer attaches tr: subsequent Phase windows and statements record
// spans into it. Passing nil disarms. Like SetContext, SetTracer must
// not be called concurrently with a running For, and must not be called
// while Phase windows are open (spans opened disarmed would close
// unrecorded).
func (m *Machine) SetTracer(tr *trace.Trace) {
	m.statsMu.Lock()
	m.tracer = tr
	m.openSpans = m.openSpans[:0]
	m.statsMu.Unlock()
}

// Tracer returns the attached trace recorder, or nil when disarmed.
func (m *Machine) Tracer() *trace.Trace { return m.tracer }

// openPhaseSpan pushes an armed Phase window. Caller holds statsMu.
func (m *Machine) openPhaseSpan(name string) {
	o := openSpan{label: name, depth: len(m.phaseStack), start: time.Now()}
	if ps := m.phases[name]; ps != nil {
		o.at = *ps
	}
	m.openSpans = append(m.openSpans, o)
}

// closePhaseSpan pops the window matching the restored phase (depth
// guards against windows opened before arming) and emits its span with
// the counter deltas booked under the label while it was open. Re-entrant
// phases — the same label opened at two nesting depths, as recursive
// kernels do — would double-count: the outer window's delta includes the
// inner's. Closing therefore advances every still-open window of the
// same label past the emitted delta, so summed span work per label
// always equals the phase's Stats() work. Caller holds statsMu.
func (m *Machine) closePhaseSpan(ended string, depth int) {
	k := len(m.openSpans)
	if k == 0 || m.openSpans[k-1].depth != depth || m.openSpans[k-1].label != ended {
		return
	}
	o := m.openSpans[k-1]
	m.openSpans = m.openSpans[:k-1]
	var cur PhaseStats
	if ps := m.phases[ended]; ps != nil {
		cur = *ps
	}
	delta := PhaseStats{
		Steps:       cur.Steps - o.at.Steps,
		Work:        cur.Work - o.at.Work,
		Calls:       cur.Calls - o.at.Calls,
		Steals:      cur.Steals - o.at.Steals,
		Span:        cur.Span - o.at.Span,
		Busy:        cur.Busy - o.at.Busy,
		BarrierWait: cur.BarrierWait - o.at.BarrierWait,
		StealWait:   cur.StealWait - o.at.StealWait,
	}
	for i := range m.openSpans {
		if m.openSpans[i].label == ended {
			m.openSpans[i].at.Steps += delta.Steps
			m.openSpans[i].at.Work += delta.Work
			m.openSpans[i].at.Calls += delta.Calls
			m.openSpans[i].at.Steals += delta.Steals
			m.openSpans[i].at.Span += delta.Span
			m.openSpans[i].at.Busy += delta.Busy
			m.openSpans[i].at.BarrierWait += delta.BarrierWait
			m.openSpans[i].at.StealWait += delta.StealWait
		}
	}
	p := m.procs
	if p >= 1<<61 {
		p = 0 // effectively unbounded: not a meaningful span attribute
	}
	m.tracer.Add(trace.Span{
		Name:        ended,
		Cat:         trace.CatPhase,
		TID:         0,
		Start:       o.start.Sub(m.tracer.Epoch()),
		Dur:         time.Since(o.start),
		P:           p,
		W:           m.workers,
		Steps:       delta.Steps,
		Work:        delta.Work,
		Calls:       delta.Calls,
		Steals:      delta.Steals,
		Busy:        delta.Busy,
		BarrierWait: delta.BarrierWait,
		StealWait:   delta.StealWait,
		SpanEst:     delta.Span,
	})
}

// emitWorkerSpans records one slice per executing worker for the
// statement that started at start: the worker's lifetime within the
// statement (Dur), its body time (Busy), and its steal activity. Only
// called when the tracer is armed; runs on the orchestrating goroutine
// after the statement barrier, so the workerStats reads are settled.
func (m *Machine) emitWorkerSpans(start time.Time, ws []workerStats) {
	tr := m.tracer
	m.statsMu.Lock()
	label := m.phase
	m.statsMu.Unlock()
	if label == "" {
		label = "(unlabeled)"
	}
	base := start.Sub(tr.Epoch())
	for i := range ws {
		tr.Add(trace.Span{
			Name:      label,
			Cat:       trace.CatWorker,
			TID:       i + 1,
			Start:     base,
			Dur:       ws[i].finish,
			Work:      int64(ws[i].elems),
			Steals:    ws[i].steals,
			Busy:      ws[i].busy,
			StealWait: ws[i].stealWait,
		})
	}
}

// emitSerialSpan is emitWorkerSpans for the single-worker fast paths,
// where the whole statement ran inline on the orchestrator (worker 0).
func (m *Machine) emitSerialSpan(start time.Time, el time.Duration, n int) {
	tr := m.tracer
	m.statsMu.Lock()
	label := m.phase
	m.statsMu.Unlock()
	if label == "" {
		label = "(unlabeled)"
	}
	tr.Add(trace.Span{
		Name:  label,
		Cat:   trace.CatWorker,
		TID:   1,
		Start: start.Sub(tr.Epoch()),
		Dur:   el,
		Work:  int64(n),
		Busy:  el,
	})
}
