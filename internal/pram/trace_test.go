package pram

import (
	"sync/atomic"
	"testing"

	"partree/internal/trace"
)

// sumPhaseSpans folds a trace's phase spans into per-label PhaseStats.
func sumPhaseSpans(tr *trace.Trace) map[string]PhaseStats {
	out := make(map[string]PhaseStats)
	for _, s := range tr.Spans() {
		if s.Cat != trace.CatPhase {
			continue
		}
		ps := out[s.Name]
		ps.Steps += s.Steps
		ps.Work += s.Work
		ps.Calls += s.Calls
		ps.Steals += s.Steals
		ps.Span += s.SpanEst
		ps.Busy += s.Busy
		ps.BarrierWait += s.BarrierWait
		ps.StealWait += s.StealWait
		out[s.Name] = ps
	}
	return out
}

// TestTracerDisarmedZeroAlloc: with no tracer attached, a phased serial
// statement allocates nothing — the hooks must stay invisible on the hot
// path (the same bar the PR that made Phase/serial-For alloc-free set).
func TestTracerDisarmedZeroAlloc(t *testing.T) {
	m := New(WithWorkers(1), WithGrain(64))
	var sink atomic.Int64
	body := func(i int) { sink.Add(int64(i)) }
	step := func() {
		done := m.Phase("alloc.probe")
		m.For(256, body)
		done()
	}
	step() // warm the phase map so the measurement sees steady state
	if avg := testing.AllocsPerRun(100, step); avg != 0 {
		t.Fatalf("disarmed phased For allocates %.1f per run, want 0", avg)
	}
}

// TestPhaseSpansMatchStats: armed, every Phase window closes into one
// span whose counted deltas reproduce the label's Stats() entry exactly —
// across serial and multi-worker statements.
func TestPhaseSpansMatchStats(t *testing.T) {
	tr := trace.New(0)
	m := New(WithWorkers(4), WithGrain(32), WithProcessors(8))
	m.SetTracer(tr)

	var sink atomic.Int64
	phaseA := func() {
		defer m.Phase("kernel.a")()
		m.For(1000, func(i int) { sink.Add(1) })
		m.Step(3)
	}
	phaseB := func() {
		defer m.Phase("kernel.b")()
		m.ForRange(577, func(lo, hi int) { sink.Add(int64(hi - lo)) })
	}
	for round := 0; round < 3; round++ {
		phaseA()
		phaseB()
	}

	got := sumPhaseSpans(tr)
	want := m.Stats().Phases
	for _, label := range []string{"kernel.a", "kernel.b"} {
		g, w := got[label], want[label]
		if g.Steps != w.Steps || g.Work != w.Work || g.Calls != w.Calls {
			t.Errorf("%s: spans sum to steps=%d work=%d calls=%d; Stats has steps=%d work=%d calls=%d",
				label, g.Steps, g.Work, g.Calls, w.Steps, w.Work, w.Calls)
		}
		if g.Steals != w.Steals || g.Span != w.Span || g.Busy != w.Busy ||
			g.BarrierWait != w.BarrierWait || g.StealWait != w.StealWait {
			t.Errorf("%s: measured deltas diverge from Stats: spans %+v, stats %+v", label, g, w)
		}
	}
	// Span attributes carry the machine shape.
	for _, s := range tr.Spans() {
		if s.Cat == trace.CatPhase && (s.P != 8 || s.W != 4) {
			t.Errorf("phase span %s: P=%d W=%d, want P=8 W=4", s.Name, s.P, s.W)
		}
	}
}

// TestReentrantPhaseSpans: a label opened recursively (outer window still
// open while an inner same-label window closes) must not double-count —
// the per-label span sum still equals Stats exactly.
func TestReentrantPhaseSpans(t *testing.T) {
	tr := trace.New(0)
	m := New(WithWorkers(1), WithGrain(16))
	m.SetTracer(tr)

	var sink atomic.Int64
	var recurse func(depth int)
	recurse = func(depth int) {
		defer m.Phase("kernel.rec")()
		m.For(100, func(i int) { sink.Add(1) })
		if depth > 0 {
			recurse(depth - 1)
		}
		m.For(50, func(i int) { sink.Add(1) })
	}
	recurse(3)

	got := sumPhaseSpans(tr)["kernel.rec"]
	want := m.Stats().Phases["kernel.rec"]
	if got.Work != want.Work || got.Steps != want.Steps || got.Calls != want.Calls {
		t.Fatalf("re-entrant label: spans sum work=%d steps=%d calls=%d; Stats work=%d steps=%d calls=%d",
			got.Work, got.Steps, got.Calls, want.Work, want.Steps, want.Calls)
	}
	// 4 windows (depth 3..0) must have produced 4 spans.
	n := 0
	for _, s := range tr.Spans() {
		if s.Cat == trace.CatPhase && s.Name == "kernel.rec" {
			n++
		}
	}
	if n != 4 {
		t.Errorf("%d phase spans, want 4", n)
	}
}

// TestWorkerSlicesCoverStatement: a multi-worker statement emits one
// CatWorker slice per executing worker and the slices' element counts
// partition the iteration space.
func TestWorkerSlicesCoverStatement(t *testing.T) {
	tr := trace.New(0)
	m := New(WithWorkers(4), WithGrain(16))
	m.SetTracer(tr)

	const n = 4096
	var sink atomic.Int64
	func() {
		defer m.Phase("kernel.slices")()
		m.For(n, func(i int) { sink.Add(1) })
	}()

	var elems int64
	tids := make(map[int]bool)
	for _, s := range tr.Spans() {
		if s.Cat != trace.CatWorker {
			continue
		}
		if s.Name != "kernel.slices" {
			t.Errorf("worker slice labeled %q, want kernel.slices", s.Name)
		}
		if s.TID < 1 || s.TID > 4 {
			t.Errorf("worker slice tid %d outside 1..4", s.TID)
		}
		tids[s.TID] = true
		elems += s.Work
	}
	if elems != n {
		t.Errorf("worker slices cover %d elements, want %d", elems, n)
	}
	if len(tids) != 4 {
		t.Errorf("slices from %d workers, want 4", len(tids))
	}
}

// TestSerialStatementEmitsSlice: the single-worker fast paths emit one
// slice on lane 1 carrying the whole statement.
func TestSerialStatementEmitsSlice(t *testing.T) {
	tr := trace.New(0)
	m := New(WithWorkers(1), WithGrain(64))
	m.SetTracer(tr)
	var sink atomic.Int64
	m.For(100, func(i int) { sink.Add(1) })

	var slices []trace.Span
	for _, s := range tr.Spans() {
		if s.Cat == trace.CatWorker {
			slices = append(slices, s)
		}
	}
	if len(slices) != 1 || slices[0].TID != 1 || slices[0].Work != 100 || slices[0].Name != "(unlabeled)" {
		t.Fatalf("serial slice = %+v, want one lane-1 slice of 100 unlabeled elements", slices)
	}
}

// TestSetTracerDisarms: detaching mid-life stops recording; the earlier
// spans stay.
func TestSetTracerDisarms(t *testing.T) {
	tr := trace.New(0)
	m := New(WithWorkers(1))
	m.SetTracer(tr)
	var sink atomic.Int64
	m.For(10, func(i int) { sink.Add(1) })
	before := tr.Len()
	if before == 0 {
		t.Fatal("armed statement recorded nothing")
	}
	m.SetTracer(nil)
	if m.Tracer() != nil {
		t.Fatal("Tracer() non-nil after disarm")
	}
	m.For(10, func(i int) { sink.Add(1) })
	if tr.Len() != before {
		t.Errorf("disarmed statement recorded spans: %d → %d", before, tr.Len())
	}
}
