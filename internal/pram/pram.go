// Package pram provides a synchronous PRAM (Parallel Random Access Machine)
// simulator used as the execution substrate for every parallel algorithm in
// this repository.
//
// The paper's cost model counts parallel time steps on a machine with p
// processors; a parallel statement over n virtual processors costs ⌈n/p⌉
// steps (Brent's scheduling principle). A Machine reproduces exactly that
// accounting while running the statement bodies on a pool of real goroutines,
// so the counted bounds can be validated independently of the host's core
// count and the host still gets genuine speedup.
//
// The single execution primitive is Machine.For: one synchronous parallel
// statement. Within a single For call the iterations must be independent —
// the barrier is the return of For. Reads of values written during the same
// For call are undefined, exactly as on a synchronous PRAM where all reads
// of a step happen before all writes commit.
package pram

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

func defaultWorkers() int { return runtime.GOMAXPROCS(0) }

// Model identifies the PRAM memory-access model an algorithm is designed
// for. The Machine itself does not restrict accesses (Go memory is shared);
// the model is carried for documentation and for TraceMemory compliance
// checking in tests.
type Model int

const (
	// EREW allows exclusive reads and exclusive writes only.
	EREW Model = iota
	// CREW allows concurrent reads but exclusive writes.
	CREW
	// CRCWCommon allows concurrent reads and concurrent writes provided all
	// writers of a cell in one step write the same value.
	CRCWCommon
)

// String returns the conventional abbreviation for the model.
func (m Model) String() string {
	switch m {
	case EREW:
		return "EREW"
	case CREW:
		return "CREW"
	case CRCWCommon:
		return "CRCW(common)"
	default:
		return fmt.Sprintf("Model(%d)", int(m))
	}
}

// Counters is a snapshot of a Machine's cost accounting.
type Counters struct {
	// Steps is the number of parallel time steps: each For(n, ·) contributes
	// ⌈n/Processors⌉, each sequential Step contributes its cost.
	Steps int64
	// Work is the total number of virtual-processor operations: each
	// For(n, ·) contributes n.
	Work int64
	// Calls is the number of parallel statements issued.
	Calls int64
}

// Machine is a simulated PRAM. The zero value is not usable; construct with
// New. A Machine's For must not be called concurrently from multiple
// goroutines and must not be nested; algorithms that need nested parallelism
// flatten their index spaces into a single For.
type Machine struct {
	model   Model
	procs   int // declared processor count p for step accounting
	workers int // real goroutines used to execute bodies
	grain   int // minimum iterations per goroutine before splitting

	steps atomic.Int64
	work  atomic.Int64
	calls atomic.Int64

	running atomic.Bool // guards against nested/concurrent For
}

// Option configures a Machine.
type Option func(*Machine)

// WithModel declares the memory-access model the algorithm assumes.
func WithModel(model Model) Option { return func(m *Machine) { m.model = model } }

// WithProcessors sets the declared processor count p used for step
// accounting (steps per parallel statement = ⌈n/p⌉). It does not change how
// many goroutines execute the statement. p must be ≥ 1.
func WithProcessors(p int) Option {
	return func(m *Machine) {
		if p < 1 {
			panic("pram: processor count must be ≥ 1")
		}
		m.procs = p
	}
}

// WithWorkers sets the number of goroutines that execute parallel
// statements. w must be ≥ 1. The default is runtime.GOMAXPROCS(0).
func WithWorkers(w int) Option {
	return func(m *Machine) {
		if w < 1 {
			panic("pram: worker count must be ≥ 1")
		}
		m.workers = w
	}
}

// WithGrain sets the minimum number of iterations a goroutine receives
// before the machine bothers splitting a statement across workers. Small
// statements run inline on the calling goroutine. The default is 1024.
func WithGrain(g int) Option {
	return func(m *Machine) {
		if g < 1 {
			panic("pram: grain must be ≥ 1")
		}
		m.grain = g
	}
}

// New constructs a Machine. With no options it models an unbounded-processor
// CREW PRAM (p = very large, so every parallel statement costs one step)
// executed on GOMAXPROCS goroutines.
func New(opts ...Option) *Machine {
	m := &Machine{
		model:   CREW,
		procs:   1 << 62, // effectively unbounded: one step per statement
		workers: defaultWorkers(),
		grain:   1024,
	}
	for _, o := range opts {
		o(m)
	}
	return m
}

// Model returns the declared memory-access model.
func (m *Machine) Model() Model { return m.model }

// Processors returns the declared processor count used for accounting.
func (m *Machine) Processors() int { return m.procs }

// Workers returns the number of executing goroutines.
func (m *Machine) Workers() int { return m.workers }

// Counters returns a snapshot of the accumulated cost counters.
func (m *Machine) Counters() Counters {
	return Counters{
		Steps: m.steps.Load(),
		Work:  m.work.Load(),
		Calls: m.calls.Load(),
	}
}

// Reset zeroes the cost counters.
func (m *Machine) Reset() {
	m.steps.Store(0)
	m.work.Store(0)
	m.calls.Store(0)
}

// Step records cost time sequential steps (and the same amount of work)
// without executing anything. Algorithms use it to account for scalar
// bookkeeping the paper charges to the machine.
func (m *Machine) Step(cost int) {
	if cost <= 0 {
		return
	}
	m.steps.Add(int64(cost))
	m.work.Add(int64(cost))
}

// For executes body(i) for every i in [0, n) as one synchronous parallel
// statement: ⌈n/p⌉ counted steps, n counted work. Iterations must be
// mutually independent. For returns after all iterations complete.
func (m *Machine) For(n int, body func(i int)) {
	if n <= 0 {
		return
	}
	if !m.running.CompareAndSwap(false, true) {
		panic("pram: nested or concurrent For on the same Machine")
	}
	defer m.running.Store(false)

	m.calls.Add(1)
	m.work.Add(int64(n))
	m.steps.Add(int64((n + m.procs - 1) / m.procs))

	w := m.workers
	if n <= m.grain || w == 1 {
		for i := 0; i < n; i++ {
			body(i)
		}
		return
	}
	if chunks := (n + m.grain - 1) / m.grain; w > chunks {
		w = chunks
	}
	chunk := (n + w - 1) / w
	var wg sync.WaitGroup
	for start := 0; start < n; start += chunk {
		end := start + chunk
		if end > n {
			end = n
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			for i := lo; i < hi; i++ {
				body(i)
			}
		}(start, end)
	}
	wg.Wait()
}

// ForRange executes body(lo, hi) on contiguous sub-ranges covering [0, n),
// one call per executing worker. It is an escape hatch for bodies that keep
// per-worker scratch state; the cost accounting is identical to For(n, ·).
func (m *Machine) ForRange(n int, body func(lo, hi int)) {
	if n <= 0 {
		return
	}
	if !m.running.CompareAndSwap(false, true) {
		panic("pram: nested or concurrent For on the same Machine")
	}
	defer m.running.Store(false)

	m.calls.Add(1)
	m.work.Add(int64(n))
	m.steps.Add(int64((n + m.procs - 1) / m.procs))

	w := m.workers
	if n <= m.grain || w == 1 {
		body(0, n)
		return
	}
	if chunks := (n + m.grain - 1) / m.grain; w > chunks {
		w = chunks
	}
	chunk := (n + w - 1) / w
	var wg sync.WaitGroup
	for start := 0; start < n; start += chunk {
		end := start + chunk
		if end > n {
			end = n
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			body(lo, hi)
		}(start, end)
	}
	wg.Wait()
}
