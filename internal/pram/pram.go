// Package pram provides a synchronous PRAM (Parallel Random Access Machine)
// simulator used as the execution substrate for every parallel algorithm in
// this repository.
//
// The paper's cost model counts parallel time steps on a machine with p
// processors; a parallel statement over n virtual processors costs ⌈n/p⌉
// steps (Brent's scheduling principle). A Machine reproduces exactly that
// accounting while running the statement bodies on a work-stealing runtime
// (per-worker deques, chunk stealing, adaptive grain — see sched.go), so the
// counted bounds can be validated independently of the host's core count and
// the host still gets genuine speedup even when the iterations' costs are
// skewed.
//
// The single execution primitive is Machine.For: one synchronous parallel
// statement. Within a single For call the iterations must be independent —
// the barrier is the return of For. Reads of values written during the same
// For call are undefined, exactly as on a synchronous PRAM where all reads
// of a step happen before all writes commit. The scheduler may execute
// iterations in any order and any interleaving.
//
// Beyond the counted Counters, every Machine keeps a Stats snapshot per
// labeled Phase: counted steps and work, plus measured steal counts, span
// estimate and barrier wait, so the paper's step counts are observable
// metrics alongside the scheduler's constant factors.
package pram

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"partree/internal/trace"
)

func defaultWorkers() int { return runtime.GOMAXPROCS(0) }

// Model identifies the PRAM memory-access model an algorithm is designed
// for. The Machine itself does not restrict accesses (Go memory is shared);
// the model is carried for documentation and for TraceMemory compliance
// checking in tests.
type Model int

const (
	// EREW allows exclusive reads and exclusive writes only.
	EREW Model = iota
	// CREW allows concurrent reads but exclusive writes.
	CREW
	// CRCWCommon allows concurrent reads and concurrent writes provided all
	// writers of a cell in one step write the same value.
	CRCWCommon
)

// String returns the conventional abbreviation for the model.
func (m Model) String() string {
	switch m {
	case EREW:
		return "EREW"
	case CREW:
		return "CREW"
	case CRCWCommon:
		return "CRCW(common)"
	default:
		return fmt.Sprintf("Model(%d)", int(m))
	}
}

// Counters is a snapshot of a Machine's counted cost accounting (the
// model-level subset of Stats, kept for compatibility).
type Counters struct {
	// Steps is the number of parallel time steps: each For(n, ·) contributes
	// ⌈n/Processors⌉, each sequential Step contributes its cost.
	Steps int64
	// Work is the total number of virtual-processor operations: each
	// For(n, ·) contributes n.
	Work int64
	// Calls is the number of parallel statements issued.
	Calls int64
}

// Machine is a simulated PRAM. The zero value is not usable; construct with
// New. A Machine's For must not be called concurrently from multiple
// goroutines and must not be nested; algorithms that need nested parallelism
// flatten their index spaces into a single For.
type Machine struct {
	model       Model
	procs       int     // declared processor count p for step accounting
	workers     int     // real goroutines used to execute bodies
	fixedGrain  int     // 0 = adaptive; >0 pins the chunk size (WithGrain)
	grainTarget float64 // adaptive controller's per-chunk work target, ns

	// ctx, when non-nil, is polled at statement barriers for cooperative
	// cancellation (see cancel.go). Nil — the default — costs one pointer
	// compare per statement.
	ctx context.Context

	// tracer, when non-nil, receives one span per Phase window and one
	// slice per worker per statement (see trace.go). Nil — the default —
	// costs one pointer compare per statement and per Phase call.
	tracer    *trace.Trace
	openSpans []openSpan

	running atomic.Bool // guards against nested/concurrent For

	// pool hosts the resident worker goroutines and the reused deque/stat
	// slices (see wpool.go). Built lazily by the first parallel statement;
	// nil until then and on machines that never go parallel.
	pool          *wpool
	idleTimeout   time.Duration // park time before a resident worker retires
	spawnDispatch bool          // WithSpawnDispatch: use the legacy spawn-per-statement path

	statsMu    sync.Mutex
	phase      string
	phaseStack []string // shadowed outer labels; popped by restorePhase
	phases     map[string]*PhaseStats
	total      PhaseStats
	// nsPerElem is the EWMA of measured per-element cost (adaptive
	// grain), stored as float64 bits so the For fast path reads the
	// grain without taking statsMu.
	nsPerElem atomic.Uint64

	// restorePhase is the one closure every Phase call returns; building
	// it once keeps the hot kernels' per-call Phase bookkeeping
	// allocation-free.
	restorePhase func()
}

// Option configures a Machine.
type Option func(*Machine)

// WithModel declares the memory-access model the algorithm assumes.
func WithModel(model Model) Option { return func(m *Machine) { m.model = model } }

// WithProcessors sets the declared processor count p used for step
// accounting (steps per parallel statement = ⌈n/p⌉). It does not change how
// many goroutines execute the statement. p must be ≥ 1.
func WithProcessors(p int) Option {
	return func(m *Machine) {
		if p < 1 {
			panic("pram: processor count must be ≥ 1")
		}
		m.procs = p
	}
}

// WithWorkers sets the number of goroutines that execute parallel
// statements. w must be ≥ 1. The default is runtime.GOMAXPROCS(0).
func WithWorkers(w int) Option {
	return func(m *Machine) {
		if w < 1 {
			panic("pram: worker count must be ≥ 1")
		}
		m.workers = w
	}
}

// WithGrain pins the number of iterations a worker takes per deque pop and
// disables the adaptive controller. Statements with n ≤ grain run inline on
// the calling goroutine. Without this option the machine sizes chunks
// adaptively from the measured per-element cost.
func WithGrain(g int) Option {
	return func(m *Machine) {
		if g < 1 {
			panic("pram: grain must be ≥ 1")
		}
		m.fixedGrain = g
	}
}

// WithGrainTarget sets the adaptive chunk controller's per-chunk work
// target in nanoseconds: chunks are sized so each deque pop carries about
// ns of measured body work. The default is 100µs; host calibration
// (internal/tune) derives a tighter value from the measured dispatch
// cost. No effect under WithGrain, which disables the controller.
func WithGrainTarget(ns int) Option {
	return func(m *Machine) {
		if ns <= 0 {
			panic("pram: grain target must be > 0")
		}
		m.grainTarget = float64(ns)
	}
}

// WithIdleTimeout sets how long a resident worker goroutine stays parked
// with no statements before it exits (the pool respawns workers lazily on
// the next statement, so this only trades idle goroutines for wake-up
// spawns). d must be > 0. The default is 200ms.
func WithIdleTimeout(d time.Duration) Option {
	return func(m *Machine) {
		if d <= 0 {
			panic("pram: idle timeout must be > 0")
		}
		m.idleTimeout = d
	}
}

// WithSpawnDispatch selects the legacy dispatcher that spawns fresh
// worker goroutines and allocates scheduler state for every parallel
// statement instead of using the resident pool. It exists so the
// dispatch-overhead experiment (E14) can measure both paths in one
// process; production callers should never need it.
func WithSpawnDispatch() Option {
	return func(m *Machine) { m.spawnDispatch = true }
}

// New constructs a Machine. With no options it models an unbounded-processor
// CREW PRAM (p = very large, so every parallel statement costs one step)
// executed on GOMAXPROCS goroutines with adaptive grain.
func New(opts ...Option) *Machine {
	m := &Machine{
		model:       CREW,
		procs:       1 << 62, // effectively unbounded: one step per statement
		workers:     defaultWorkers(),
		idleTimeout: idleTimeoutDefault,
		grainTarget: grainTargetNs,
		phases:      make(map[string]*PhaseStats),
	}
	m.restorePhase = func() {
		m.statsMu.Lock()
		ended := m.phase
		n := len(m.phaseStack)
		m.phase = m.phaseStack[n-1]
		m.phaseStack = m.phaseStack[:n-1]
		if m.tracer != nil {
			m.closePhaseSpan(ended, n)
		}
		m.statsMu.Unlock()
	}
	for _, o := range opts {
		o(m)
	}
	return m
}

// Close retires the Machine's resident worker goroutines immediately and
// waits for them to exit. The Machine stays usable — the next parallel
// statement lazily respawns the pool — so Close is an idle/lifecycle
// operation, not a terminal one. It must not be called concurrently with
// a running For/Run on the same Machine. Parked workers also retire on
// their own after the idle timeout, so Close is optional for callers that
// can tolerate the pool lingering that long.
func (m *Machine) Close() {
	if m.pool != nil {
		m.pool.close()
	}
}

// Model returns the declared memory-access model.
func (m *Machine) Model() Model { return m.model }

// Processors returns the declared processor count used for accounting.
func (m *Machine) Processors() int { return m.procs }

// Workers returns the number of executing goroutines.
func (m *Machine) Workers() int { return m.workers }

// Grain returns the chunk size the next large statement would use: the
// pinned WithGrain value or the adaptive controller's current choice.
func (m *Machine) Grain() int { return m.grain() }

// Counters returns a snapshot of the accumulated counted cost.
func (m *Machine) Counters() Counters {
	m.statsMu.Lock()
	defer m.statsMu.Unlock()
	return Counters{
		Steps: m.total.Steps,
		Work:  m.total.Work,
		Calls: m.total.Calls,
	}
}

// Reset zeroes the cost counters and the per-phase stats. The adaptive
// grain calibration is deliberately kept: it describes the workload, not
// the measurement window.
func (m *Machine) Reset() {
	m.statsMu.Lock()
	m.total = PhaseStats{}
	m.phases = make(map[string]*PhaseStats)
	m.statsMu.Unlock()
}

// Step records cost time sequential steps (and the same amount of work)
// without executing anything. Algorithms use it to account for scalar
// bookkeeping the paper charges to the machine.
func (m *Machine) Step(cost int) {
	if cost <= 0 {
		return
	}
	m.record(int64(cost), int64(cost), 0, stmtStats{})
}

// For executes body(i) for every i in [0, n) as one synchronous parallel
// statement: ⌈n/p⌉ counted steps, n counted work. Iterations must be
// mutually independent. For returns after all iterations complete.
//
// Statements small enough to run on one worker skip the range-adapter
// closure the chunked scheduler needs, so a serial For costs no
// allocations beyond the caller's own body closure.
func (m *Machine) For(n int, body func(i int)) {
	if n <= 0 {
		return
	}
	m.checkpoint()
	g := m.Grain()
	w := m.workers
	if chunks := (n + g - 1) / g; w > chunks {
		w = chunks
	}
	if w == 1 {
		if !m.running.CompareAndSwap(false, true) {
			panic("pram: nested or concurrent For on the same Machine")
		}
		defer m.running.Store(false)
		steps := int64((n + m.procs - 1) / m.procs)
		start := time.Now()
		if m.ctx == nil {
			for i := 0; i < n; i++ {
				body(i)
			}
		} else {
			// Poll between grain-sized chunks so a serial statement still
			// honors cancellation within one chunk's worth of work. The
			// final poll mirrors the parallel path's post-barrier
			// checkpoint: a statement that finished under a dead context
			// still aborts, so single-statement calls can't complete
			// "successfully" with a cancelled context.
			for lo := 0; lo < n; lo += g {
				hi := lo + g
				if hi > n {
					hi = n
				}
				for i := lo; i < hi; i++ {
					body(i)
				}
				m.checkpoint()
			}
		}
		el := time.Since(start)
		m.record(steps, int64(n), 1, stmtStats{span: el, busy: el})
		m.observeCost(n, el)
		if m.tracer != nil {
			m.emitSerialSpan(start, el, n)
		}
		return
	}
	m.forChunked(n, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			body(i)
		}
	})
}

// ForRange executes body(lo, hi) on contiguous sub-ranges covering [0, n).
// It is an escape hatch for bodies that keep per-call scratch state; the
// cost accounting is identical to For(n, ·). The scheduler issues one call
// per grain-sized chunk (at least one per executing worker), so bodies must
// tolerate any number of calls.
func (m *Machine) ForRange(n int, body func(lo, hi int)) {
	m.forChunked(n, body)
}

// forChunked is the shared scheduling core of For and ForRange.
func (m *Machine) forChunked(n int, body func(lo, hi int)) {
	if n <= 0 {
		return
	}
	m.checkpoint()
	if !m.running.CompareAndSwap(false, true) {
		panic("pram: nested or concurrent For on the same Machine")
	}
	defer m.running.Store(false)

	steps := int64((n + m.procs - 1) / m.procs)

	g := m.Grain()
	w := m.workers
	if chunks := (n + g - 1) / g; w > chunks {
		w = chunks
	}
	if w == 1 {
		start := time.Now()
		if m.ctx == nil {
			body(0, n)
		} else {
			// Bodies must tolerate per-chunk calls (ForRange contract), so
			// the serial path can poll between grain-sized chunks here too
			// (final poll included; see For).
			for lo := 0; lo < n; lo += g {
				hi := lo + g
				if hi > n {
					hi = n
				}
				body(lo, hi)
				m.checkpoint()
			}
		}
		el := time.Since(start)
		m.record(steps, int64(n), 1, stmtStats{span: el, busy: el})
		m.observeCost(n, el)
		if m.tracer != nil {
			m.emitSerialSpan(start, el, n)
		}
		return
	}

	var done <-chan struct{}
	if m.ctx != nil {
		done = m.ctx.Done()
	}
	start := time.Now()
	// Exact per-chunk timing only when a tracer needs faithful worker
	// slices; disarmed statements use the amortized clock protocol (see
	// worker in sched.go).
	exact := m.tracer != nil
	var st stmtStats
	var ws []workerStats
	if m.spawnDispatch {
		st, ws = runSpawn(n, w, g, body, done, start)
	} else {
		if m.pool == nil {
			m.pool = newWPool(m.workers, m.idleTimeout)
		}
		st, ws = m.pool.run(n, w, g, body, done, start, exact)
	}
	// Workers bail at pop/steal boundaries once the context is done,
	// abandoning unexecuted chunks; the statement is then incomplete, so
	// the abort must happen before anyone reads its outputs.
	m.checkpoint()
	m.record(steps, int64(n), 1, st)
	m.observeCost(n, st.busy)
	if m.tracer != nil {
		m.emitWorkerSpans(start, ws)
	}
}
