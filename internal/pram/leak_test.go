package pram

import (
	"runtime"
	"sync/atomic"
	"testing"
	"time"
)

// Goroutine-lifecycle regression tests for the resident pool: dispatch
// must not spawn per statement, pools must not leak, and both Close and
// the idle timeout must return the pool to zero goroutines.

var leakSink atomic.Int64

// TestNoSpawnOrGoroutineGrowthAcrossStatements drives 10k parallel
// statements through one reused machine and requires the goroutine count
// to stay flat and the spawn counter to stay still: resident workers are
// created once on the first statement and only woken afterwards.
func TestNoSpawnOrGoroutineGrowthAcrossStatements(t *testing.T) {
	before := runtime.NumGoroutine()
	// The long idle timeout makes the test deterministic: no worker may
	// retire (and force a respawn) mid-loop however slowly the host runs.
	m := New(WithWorkers(4), WithGrain(8), WithIdleTimeout(time.Minute))
	defer m.Close()

	const n = 64
	body := func(i int) { leakSink.Add(1) }
	m.For(n, body) // first statement builds the pool
	base := runtime.NumGoroutine()
	spawnBase := SpawnedWorkers()

	for s := 0; s < 10_000; s++ {
		m.For(n, body)
		if s%1000 == 999 {
			if g := runtime.NumGoroutine(); g > base+2 {
				t.Fatalf("goroutine count grew mid-loop: %d after %d statements vs %d baseline", g, s+1, base)
			}
		}
	}
	if d := SpawnedWorkers() - spawnBase; d != 0 {
		t.Errorf("steady state spawned %d goroutines across 10k statements, want 0", d)
	}
	m.Close()
	waitForGoroutines(t, before)
}

// TestCloseReturnsPoolToZeroAndMachineStaysUsable: Close drains the
// resident goroutines synchronously, and the machine transparently
// rebuilds the pool on the next statement.
func TestCloseReturnsPoolToZeroAndMachineStaysUsable(t *testing.T) {
	before := runtime.NumGoroutine()
	m := New(WithWorkers(4), WithGrain(8), WithIdleTimeout(time.Minute))
	var count atomic.Int64
	m.For(64, func(i int) { count.Add(1) })
	m.Close()
	waitForGoroutines(t, before)

	count.Store(0)
	m.For(64, func(i int) { count.Add(1) }) // respawns the pool
	if count.Load() != 64 {
		t.Errorf("post-Close statement executed %d iterations, want 64", count.Load())
	}
	m.Close()
	waitForGoroutines(t, before)
}

// TestIdleTimeoutRetiresWorkers: with no Close call at all, parked
// workers must exit on their own once no statement has run for a full
// idle window.
func TestIdleTimeoutRetiresWorkers(t *testing.T) {
	before := runtime.NumGoroutine()
	m := New(WithWorkers(4), WithGrain(8), WithIdleTimeout(25*time.Millisecond))
	var count atomic.Int64
	m.For(64, func(i int) { count.Add(1) })
	waitForGoroutines(t, before) // no Close: the timers must do it

	// A retired pool must still serve later statements correctly.
	count.Store(0)
	m.For(64, func(i int) { count.Add(1) })
	if count.Load() != 64 {
		t.Errorf("post-retire statement executed %d iterations, want 64", count.Load())
	}
	m.Close()
}
