package grammar

// Closure operations of the linear context-free languages, in normal
// form. Linear languages are closed under reversal and union (both
// constructions below stay linear); they are famously NOT closed under
// concatenation or intersection — which is why Section 8's triangular
// path structure exists at all.

// Reverse returns a grammar for { reverse(w) : w ∈ L(g) }: every A → tB
// becomes A → Bt and vice versa; terminal rules are unchanged.
func Reverse(g *Linear) *Linear {
	out := &Linear{
		NumNT: g.NumNT,
		Start: g.Start,
		Names: append([]string(nil), g.Names...),
	}
	for _, r := range g.Left {
		out.Right = append(out.Right, RightRule{A: r.A, B: r.B, T: r.T})
	}
	for _, r := range g.Right {
		out.Left = append(out.Left, LeftRule{A: r.A, T: r.T, B: r.B})
	}
	out.Term = append(out.Term, g.Term...)
	return out
}

// Union returns a grammar for L(g1) ∪ L(g2). The second grammar's
// nonterminals are shifted past the first's; a fresh start symbol
// receives copies of both start symbols' rules (the normal form has no
// unit rules, so the copies keep the grammar normal).
func Union(g1, g2 *Linear) *Linear {
	off := g1.NumNT
	out := &Linear{NumNT: g1.NumNT + g2.NumNT + 1}
	out.Start = out.NumNT - 1
	out.Names = append(out.Names, g1.Names...)
	out.Names = append(out.Names, g2.Names...)
	out.Names = append(out.Names, "S∪")

	out.Left = append(out.Left, g1.Left...)
	out.Right = append(out.Right, g1.Right...)
	out.Term = append(out.Term, g1.Term...)
	for _, r := range g2.Left {
		out.Left = append(out.Left, LeftRule{A: r.A + off, T: r.T, B: r.B + off})
	}
	for _, r := range g2.Right {
		out.Right = append(out.Right, RightRule{A: r.A + off, B: r.B + off, T: r.T})
	}
	for _, r := range g2.Term {
		out.Term = append(out.Term, TermRule{A: r.A + off, T: r.T})
	}

	copyStart := func(start, shift int) {
		for _, r := range out.Left {
			if r.A == start+shift {
				out.Left = append(out.Left, LeftRule{A: out.Start, T: r.T, B: r.B})
			}
		}
		for _, r := range out.Right {
			if r.A == start+shift {
				out.Right = append(out.Right, RightRule{A: out.Start, B: r.B, T: r.T})
			}
		}
		for _, r := range out.Term {
			if r.A == start+shift {
				out.Term = append(out.Term, TermRule{A: out.Start, T: r.T})
			}
		}
	}
	copyStart(g1.Start, 0)
	copyStart(g2.Start, off)
	return out
}
