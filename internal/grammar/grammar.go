// Package grammar defines linear context-free grammars and their
// normalization to the form Section 8 of the paper requires: every rule is
//
//	A → bB   |   A → Cb   |   A → a
//
// with A, B, C nonterminals and a, b terminals. Arbitrary linear rules
// A → uBv (u, v terminal strings) and A → w (non-empty terminal string)
// are accepted by Normalize, which introduces auxiliary nonterminals and
// eliminates unit rules A → B, keeping the grammar size within a constant
// factor of the input as the paper notes. ε-rules are not supported
// (linear normal form cannot express them).
package grammar

import (
	"fmt"
	"math/rand"
	"strings"
)

// LeftRule is A → tB.
type LeftRule struct {
	A int
	T byte
	B int
}

// RightRule is A → Bt.
type RightRule struct {
	A int
	B int
	T byte
}

// TermRule is A → t.
type TermRule struct {
	A int
	T byte
}

// Linear is a normalized linear context-free grammar. Nonterminals are
// dense indices 0…NumNT-1; Names records a printable name for each.
type Linear struct {
	NumNT int
	Start int
	Names []string
	Left  []LeftRule
	Right []RightRule
	Term  []TermRule
}

// RawRule is an un-normalized linear rule A → Pre B Suf (B == "" makes it
// a terminal rule A → Pre, in which case Suf must be empty). A unit rule
// is expressed as Pre == "" and Suf == "" with B set.
type RawRule struct {
	A   string
	Pre string
	B   string
	Suf string
}

// Normalize converts raw linear rules into normal form.
func Normalize(rules []RawRule, start string) (*Linear, error) {
	if len(rules) == 0 {
		return nil, fmt.Errorf("grammar: no rules")
	}
	g := &Linear{}
	index := map[string]int{}
	intern := func(name string) int {
		if id, ok := index[name]; ok {
			return id
		}
		id := g.NumNT
		g.NumNT++
		index[name] = id
		g.Names = append(g.Names, name)
		return id
	}
	for _, r := range rules {
		if r.A == "" {
			return nil, fmt.Errorf("grammar: rule with empty head")
		}
		intern(r.A)
	}
	if _, ok := index[start]; !ok {
		return nil, fmt.Errorf("grammar: start symbol %q has no rules", start)
	}
	g.Start = index[start]

	aux := 0
	fresh := func() int {
		aux++
		return intern(fmt.Sprintf("·%d", aux))
	}

	type unit struct{ a, b int }
	var units []unit

	for _, r := range rules {
		a := index[r.A]
		switch {
		case r.B == "" && r.Suf != "":
			return nil, fmt.Errorf("grammar: terminal rule %q has a suffix but no nonterminal", r.A)
		case r.B == "":
			w := r.Pre
			if w == "" {
				return nil, fmt.Errorf("grammar: ε-rule for %q not supported", r.A)
			}
			// A → w: peel terminals left to right.
			cur := a
			for i := 0; i < len(w)-1; i++ {
				nxt := fresh()
				g.Left = append(g.Left, LeftRule{A: cur, T: w[i], B: nxt})
				cur = nxt
			}
			g.Term = append(g.Term, TermRule{A: cur, T: w[len(w)-1]})
		default:
			b, ok := index[r.B]
			if !ok {
				return nil, fmt.Errorf("grammar: rule %q uses undefined nonterminal %q", r.A, r.B)
			}
			pre, suf := r.Pre, r.Suf
			if pre == "" && suf == "" {
				units = append(units, unit{a, b})
				continue
			}
			// Peel the prefix first, then the suffix from the outside in:
			// A ⇒ pre X, X ⇒ Y suf_reversed-peeling, Y = B.
			cur := a
			for i := 0; i < len(pre); i++ {
				last := i == len(pre)-1 && suf == ""
				if last {
					g.Left = append(g.Left, LeftRule{A: cur, T: pre[i], B: b})
				} else {
					nxt := fresh()
					g.Left = append(g.Left, LeftRule{A: cur, T: pre[i], B: nxt})
					cur = nxt
				}
			}
			for i := len(suf) - 1; i >= 0; i-- {
				last := i == 0
				if last {
					g.Right = append(g.Right, RightRule{A: cur, B: b, T: suf[i]})
				} else {
					nxt := fresh()
					g.Right = append(g.Right, RightRule{A: cur, B: nxt, T: suf[i]})
					cur = nxt
				}
			}
		}
	}

	// Eliminate unit rules by transitive closure: if A ⇒* B via units and
	// B → x is a real rule, add A → x.
	if len(units) > 0 {
		reach := make([][]bool, g.NumNT)
		for i := range reach {
			reach[i] = make([]bool, g.NumNT)
			reach[i][i] = true
		}
		for _, u := range units {
			reach[u.a][u.b] = true
		}
		for k := 0; k < g.NumNT; k++ {
			for i := 0; i < g.NumNT; i++ {
				if reach[i][k] {
					for j := 0; j < g.NumNT; j++ {
						if reach[k][j] {
							reach[i][j] = true
						}
					}
				}
			}
		}
		var nl []LeftRule
		var nr []RightRule
		var nt []TermRule
		seenL := map[LeftRule]bool{}
		seenR := map[RightRule]bool{}
		seenT := map[TermRule]bool{}
		for a := 0; a < g.NumNT; a++ {
			for b := 0; b < g.NumNT; b++ {
				if !reach[a][b] {
					continue
				}
				for _, r := range g.Left {
					if r.B >= 0 && r.A == b {
						k := LeftRule{A: a, T: r.T, B: r.B}
						if !seenL[k] {
							seenL[k] = true
							nl = append(nl, k)
						}
					}
				}
				for _, r := range g.Right {
					if r.A == b {
						k := RightRule{A: a, B: r.B, T: r.T}
						if !seenR[k] {
							seenR[k] = true
							nr = append(nr, k)
						}
					}
				}
				for _, r := range g.Term {
					if r.A == b {
						k := TermRule{A: a, T: r.T}
						if !seenT[k] {
							seenT[k] = true
							nt = append(nt, k)
						}
					}
				}
			}
		}
		g.Left, g.Right, g.Term = nl, nr, nt
	}
	return g, nil
}

// String renders the grammar in readable form.
func (g *Linear) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "start: %s\n", g.Names[g.Start])
	for _, r := range g.Left {
		fmt.Fprintf(&b, "%s → %c %s\n", g.Names[r.A], r.T, g.Names[r.B])
	}
	for _, r := range g.Right {
		fmt.Fprintf(&b, "%s → %s %c\n", g.Names[r.A], g.Names[r.B], r.T)
	}
	for _, r := range g.Term {
		fmt.Fprintf(&b, "%s → %c\n", g.Names[r.A], r.T)
	}
	return b.String()
}

// Sample generates a random word of L(G) by walking rules from Start,
// bounded by maxSteps chain rules (returns ok=false if no terminal rule
// was reachable within the budget — e.g. for grammars of only infinite
// derivations from some nonterminal).
func (g *Linear) Sample(rng *rand.Rand, maxSteps int) ([]byte, bool) {
	var pre, suf []byte
	cur := g.Start
	for step := 0; step < maxSteps; step++ {
		// Close with a terminal rule with probability growing over time.
		var terms []TermRule
		for _, r := range g.Term {
			if r.A == cur {
				terms = append(terms, r)
			}
		}
		var chains []interface{}
		for _, r := range g.Left {
			if r.A == cur {
				chains = append(chains, r)
			}
		}
		for _, r := range g.Right {
			if r.A == cur {
				chains = append(chains, r)
			}
		}
		mustClose := len(chains) == 0 || step == maxSteps-1
		if len(terms) > 0 && (mustClose || rng.Intn(4) == 0) {
			r := terms[rng.Intn(len(terms))]
			out := append(append(pre, r.T), reverseBytes(suf)...)
			return out, true
		}
		if len(chains) == 0 {
			return nil, false
		}
		switch r := chains[rng.Intn(len(chains))].(type) {
		case LeftRule:
			pre = append(pre, r.T)
			cur = r.B
		case RightRule:
			suf = append(suf, r.T) // collected reversed; flipped at the end
			cur = r.B
		}
	}
	return nil, false
}

func reverseBytes(b []byte) []byte {
	out := make([]byte, len(b))
	for i, v := range b {
		out[len(b)-1-i] = v
	}
	return out
}

// Palindrome returns the classic linear grammar for odd-length
// palindromes over {a,b} with centre marker c: S → aSa | bSb | c.
func Palindrome() *Linear {
	g, err := Normalize([]RawRule{
		{A: "S", Pre: "a", B: "S", Suf: "a"},
		{A: "S", Pre: "b", B: "S", Suf: "b"},
		{A: "S", Pre: "c"},
	}, "S")
	if err != nil {
		panic(err)
	}
	return g
}

// EqualEnds returns a grammar for {aⁿ w bⁿ : n ≥ 1, w ∈ {c}⁺}: nested
// brackets around a core, a second stock example.
func EqualEnds() *Linear {
	g, err := Normalize([]RawRule{
		{A: "S", Pre: "a", B: "S", Suf: "b"},
		{A: "S", Pre: "a", B: "C", Suf: "b"},
		{A: "C", Pre: "c", B: "C"},
		{A: "C", Pre: "c"},
	}, "S")
	if err != nil {
		panic(err)
	}
	return g
}

// Random returns a random normalized linear grammar over the given
// terminal alphabet with nNT nonterminals and about density rules per
// kind, guaranteed to derive at least one word.
func Random(rng *rand.Rand, nNT int, alphabet []byte, rulesPerNT int) *Linear {
	g := &Linear{NumNT: nNT, Start: 0}
	for i := 0; i < nNT; i++ {
		g.Names = append(g.Names, fmt.Sprintf("N%d", i))
	}
	for a := 0; a < nNT; a++ {
		for r := 0; r < rulesPerNT; r++ {
			t := alphabet[rng.Intn(len(alphabet))]
			b := rng.Intn(nNT)
			switch rng.Intn(3) {
			case 0:
				g.Left = append(g.Left, LeftRule{A: a, T: t, B: b})
			case 1:
				g.Right = append(g.Right, RightRule{A: a, B: b, T: t})
			default:
				g.Term = append(g.Term, TermRule{A: a, T: t})
			}
		}
	}
	// Ensure every nonterminal can terminate (keeps Sample productive).
	for a := 0; a < nNT; a++ {
		g.Term = append(g.Term, TermRule{A: a, T: alphabet[rng.Intn(len(alphabet))]})
	}
	return g
}
