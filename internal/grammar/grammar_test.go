package grammar

import (
	"math/rand"
	"strings"
	"testing"
)

func TestNormalizeSimple(t *testing.T) {
	g, err := Normalize([]RawRule{
		{A: "S", Pre: "a", B: "S"},
		{A: "S", Pre: "b"},
	}, "S")
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Left) != 1 || len(g.Term) != 1 || len(g.Right) != 0 {
		t.Errorf("rule counts: %d left, %d right, %d term", len(g.Left), len(g.Right), len(g.Term))
	}
	if g.Names[g.Start] != "S" {
		t.Error("start symbol wrong")
	}
}

func TestNormalizeLongRules(t *testing.T) {
	// S → abc S de needs 4 auxiliary nonterminals (peel a, b, c, then e, d).
	g, err := Normalize([]RawRule{
		{A: "S", Pre: "abc", B: "S", Suf: "de"},
		{A: "S", Pre: "x"},
	}, "S")
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Left) != 3 || len(g.Right) != 2 || len(g.Term) != 1 {
		t.Errorf("rule counts: %d left, %d right, %d term", len(g.Left), len(g.Right), len(g.Term))
	}
	// Every rule head and body nonterminal must be a valid index.
	for _, r := range g.Left {
		if r.A < 0 || r.A >= g.NumNT || r.B < 0 || r.B >= g.NumNT {
			t.Fatal("rule references invalid nonterminal")
		}
	}
}

func TestNormalizeTerminalString(t *testing.T) {
	g, err := Normalize([]RawRule{{A: "S", Pre: "hello"}}, "S")
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Left) != 4 || len(g.Term) != 1 {
		t.Errorf("counts: %d left, %d term", len(g.Left), len(g.Term))
	}
}

func TestNormalizeUnitRules(t *testing.T) {
	// S → A (unit), A → a: after elimination S must derive "a" directly.
	g, err := Normalize([]RawRule{
		{A: "S", B: "A"},
		{A: "A", Pre: "a"},
	}, "S")
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, r := range g.Term {
		if r.A == g.Start && r.T == 'a' {
			found = true
		}
	}
	if !found {
		t.Error("unit elimination did not copy A → a to S")
	}
}

func TestNormalizeUnitChains(t *testing.T) {
	g, err := Normalize([]RawRule{
		{A: "S", B: "A"},
		{A: "A", B: "B"},
		{A: "B", Pre: "b", B: "S"},
		{A: "B", Pre: "z"},
	}, "S")
	if err != nil {
		t.Fatal(err)
	}
	foundLeft, foundTerm := false, false
	for _, r := range g.Left {
		if r.A == g.Start && r.T == 'b' {
			foundLeft = true
		}
	}
	for _, r := range g.Term {
		if r.A == g.Start && r.T == 'z' {
			foundTerm = true
		}
	}
	if !foundLeft || !foundTerm {
		t.Error("transitive unit elimination incomplete")
	}
}

func TestNormalizeErrors(t *testing.T) {
	cases := []struct {
		rules []RawRule
		start string
	}{
		{nil, "S"},
		{[]RawRule{{A: "S", Pre: "a"}}, "T"},           // unknown start
		{[]RawRule{{A: "S"}}, "S"},                     // ε-rule
		{[]RawRule{{A: "S", Pre: "a", Suf: "b"}}, "S"}, // suffix without B
		{[]RawRule{{A: "S", Pre: "a", B: "X"}}, "S"},   // undefined B
		{[]RawRule{{A: "", Pre: "a"}}, ""},             // empty head
	}
	for i, c := range cases {
		if _, err := Normalize(c.rules, c.start); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
}

func TestStringRendering(t *testing.T) {
	g := Palindrome()
	s := g.String()
	if !strings.Contains(s, "start: S") || !strings.Contains(s, "→") {
		t.Errorf("String():\n%s", s)
	}
}

func TestSampleTerminates(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	g := Palindrome()
	got := 0
	for trial := 0; trial < 50; trial++ {
		if w, ok := g.Sample(rng, 60); ok {
			got++
			if len(w) == 0 {
				t.Error("sampled empty word")
			}
		}
	}
	if got == 0 {
		t.Error("sampling never produced a word")
	}
}

func TestRandomGrammarSampleable(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 10; trial++ {
		g := Random(rng, 3, []byte("ab"), 2)
		if g.NumNT != 3 || len(g.Term) < 3 {
			t.Fatal("random grammar malformed")
		}
		if _, ok := g.Sample(rng, 40); !ok {
			t.Error("random grammar should sample (every NT can terminate)")
		}
	}
}

func TestStockGrammars(t *testing.T) {
	if g := Palindrome(); g.NumNT == 0 || len(g.Right) == 0 {
		t.Error("palindrome grammar malformed")
	}
	if g := EqualEnds(); g.NumNT == 0 || len(g.Left) == 0 {
		t.Error("equal-ends grammar malformed")
	}
}
