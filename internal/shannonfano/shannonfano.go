// Package shannonfano implements Shannon–Fano coding as specified in
// Section 7.3 of the paper: word lengths lᵢ with
// log₂(1/pᵢ) ≤ lᵢ ≤ log₂(1/pᵢ)+1, realized as a prefix-code tree by the
// parallel monotone tree construction (Theorem 7.4). By Claim 7.1 the
// average word length is within one bit of the Huffman optimum.
package shannonfano

import (
	"fmt"
	"math"
	"sort"

	"partree/internal/faultpoint"
	"partree/internal/huffman"
	"partree/internal/leafpattern"
	"partree/internal/pram"
	"partree/internal/tree"
)

// Lengths returns the Shannon–Fano code lengths lᵢ = ⌈log₂(1/pᵢ)⌉ for a
// probability vector (entries in (0,1], ideally summing to 1). The Kraft
// sum of the result is ≤ Σpᵢ, so a prefix code always exists when the
// input is a probability distribution.
func Lengths(p []float64) []int {
	out := make([]int, len(p))
	for i, v := range p {
		if v <= 0 || v > 1 || math.IsNaN(v) {
			panic(fmt.Sprintf("shannonfano: probability %v at %d outside (0,1]", v, i))
		}
		// Smallest l ≥ 0 with 2^{-l} ≤ v, computed robustly against
		// floating error at exact powers of two.
		l := int(math.Ceil(-math.Log2(v) - 1e-12))
		if l < 0 {
			l = 0
		}
		for math.Ldexp(1, -l) > v {
			l++
		}
		out[i] = l
	}
	return out
}

// Result is a Shannon–Fano code.
type Result struct {
	// Lengths[i] is the code length of symbol i.
	Lengths []int
	// Codes[i] is the code word of symbol i (canonical assignment).
	Codes []huffman.Code
	// Tree realizes the code: its leaves, left to right, are the symbols
	// in non-decreasing length order; leaf Symbol fields hold original
	// symbol indices.
	Tree *tree.Node
	// AverageLength is Σ pᵢ·lᵢ.
	AverageLength float64
}

// Build constructs a Shannon–Fano code for the probability vector p using
// the parallel monotone tree construction on machine m (Theorem 7.4:
// O(log n) time, n/log n processors, average length ≤ Huffman + 1).
func Build(m *pram.Machine, p []float64) (*Result, error) {
	n := len(p)
	if n == 0 {
		return nil, fmt.Errorf("shannonfano: empty probability vector")
	}
	defer m.Phase("shannonfano.Build")()
	faultpoint.Hit("shannonfano.build")
	lengths := Lengths(p)

	// Sort symbols by length (non-decreasing pattern for the constructor).
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool { return lengths[order[a]] < lengths[order[b]] })
	pattern := make([]int, n)
	for k, sym := range order {
		pattern[k] = lengths[sym]
	}

	t, err := leafpattern.MonotonePar(m, pattern)
	if err != nil {
		return nil, fmt.Errorf("shannonfano: %w", err)
	}
	// Remap leaf symbols (pattern positions) to original symbol indices.
	for _, leaf := range t.Leaves() {
		leaf.Symbol = order[leaf.Symbol]
		leaf.Weight = p[leaf.Symbol]
	}

	codes, err := huffman.Canonical(lengths)
	if err != nil {
		return nil, fmt.Errorf("shannonfano: %w", err)
	}
	avg := 0.0
	for i, l := range lengths {
		avg += p[i] * float64(l)
	}
	return &Result{Lengths: lengths, Codes: codes, Tree: t, AverageLength: avg}, nil
}
