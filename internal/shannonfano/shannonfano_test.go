package shannonfano

import (
	"math"
	"math/rand"
	"testing"

	"partree/internal/huffman"
	"partree/internal/pram"
	"partree/internal/workload"
)

func mach() *pram.Machine { return pram.New(pram.WithWorkers(2), pram.WithGrain(32)) }

func TestLengthsBound(t *testing.T) {
	rng := rand.New(rand.NewSource(181))
	for trial := 0; trial < 30; trial++ {
		p := workload.Random(rng, 2+rng.Intn(100))
		ls := Lengths(p)
		for i, l := range ls {
			lower := -math.Log2(p[i])
			if float64(l) < lower-1e-9 || float64(l) > lower+1+1e-9 {
				t.Fatalf("l_%d = %d outside [log 1/p, log 1/p + 1] = [%v, %v]",
					i, l, lower, lower+1)
			}
		}
	}
}

func TestLengthsExactPowers(t *testing.T) {
	ls := Lengths([]float64{0.5, 0.25, 0.125, 0.125})
	want := []int{1, 2, 3, 3}
	for i := range want {
		if ls[i] != want[i] {
			t.Fatalf("Lengths = %v, want %v", ls, want)
		}
	}
	if Lengths([]float64{1})[0] != 0 {
		t.Error("p=1 must get length 0")
	}
}

func TestLengthsRejectsBad(t *testing.T) {
	for _, p := range [][]float64{{0}, {-0.1}, {1.5}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Lengths(%v) must panic", p)
				}
			}()
			Lengths(p)
		}()
	}
}

func TestBuildProducesValidCode(t *testing.T) {
	rng := rand.New(rand.NewSource(191))
	m := mach()
	for trial := 0; trial < 30; trial++ {
		p := workload.Random(rng, 1+rng.Intn(80))
		res, err := Build(m, p)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if !huffman.IsPrefixFree(res.Codes) {
			t.Fatalf("trial %d: codes not prefix free", trial)
		}
		if err := res.Tree.Validate(); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		// Tree depths must equal the assigned lengths per symbol.
		seen := make(map[int]bool)
		for _, leaf := range res.Tree.Leaves() {
			seen[leaf.Symbol] = true
		}
		depths := res.Tree.LeafDepths()
		leaves := res.Tree.Leaves()
		for i, leaf := range leaves {
			if depths[i] != res.Lengths[leaf.Symbol] {
				t.Fatalf("trial %d: leaf for symbol %d at depth %d, want %d",
					trial, leaf.Symbol, depths[i], res.Lengths[leaf.Symbol])
			}
		}
		if len(seen) != len(p) {
			t.Fatalf("trial %d: tree covers %d symbols, want %d", trial, len(seen), len(p))
		}
	}
}

// Claim 7.1: HUFF(A) ≤ SF(A) ≤ HUFF(A) + 1.
func TestClaim71WithinOneBitOfHuffman(t *testing.T) {
	rng := rand.New(rand.NewSource(193))
	m := mach()
	workloads := [][]float64{
		workload.English(),
		workload.Uniform(26),
		workload.Zipf(100, 1.0),
		workload.Geometric(40, 0.8),
	}
	for trial := 0; trial < 30; trial++ {
		workloads = append(workloads, workload.Random(rng, 2+rng.Intn(120)))
	}
	for i, p := range workloads {
		res, err := Build(m, p)
		if err != nil {
			t.Fatalf("workload %d: %v", i, err)
		}
		huff := huffman.Cost(p)
		if res.AverageLength < huff-1e-9 {
			t.Fatalf("workload %d: SF %v below Huffman %v (impossible)", i, res.AverageLength, huff)
		}
		if res.AverageLength > huff+1+1e-9 {
			t.Fatalf("workload %d: SF %v exceeds Huffman+1 = %v (Claim 7.1 violated)",
				i, res.AverageLength, huff+1)
		}
	}
}

func TestBuildEmpty(t *testing.T) {
	if _, err := Build(mach(), nil); err == nil {
		t.Error("empty input must error")
	}
}

// Theorem 7.4 shape: O(log n) parallel statements.
func TestBuildRoundCount(t *testing.T) {
	for _, n := range []int{64, 4096} {
		m := pram.New()
		p := workload.Zipf(n, 1.1)
		if _, err := Build(m, p); err != nil {
			t.Fatal(err)
		}
		if steps := m.Counters().Steps; steps > 120 {
			t.Errorf("n=%d: %d statements, want O(log n)", n, steps)
		}
	}
}
