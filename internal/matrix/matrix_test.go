package matrix

import (
	"math/rand"
	"testing"

	"partree/internal/pram"
	"partree/internal/semiring"
)

func randMat(rng *rand.Rand, r, c int) *Dense {
	d := New(r, c)
	for i := 0; i < r; i++ {
		for j := 0; j < c; j++ {
			d.Set(i, j, float64(rng.Intn(100)))
		}
	}
	return d
}

func TestNewAndAccessors(t *testing.T) {
	d := New(2, 3)
	if d.R != 2 || d.C != 3 {
		t.Fatal("shape wrong")
	}
	d.Set(1, 2, 5)
	if d.At(1, 2) != 5 || d.At(0, 0) != 0 {
		t.Error("Set/At wrong")
	}
	row := d.Row(1)
	row[0] = 9
	if d.At(1, 0) != 9 {
		t.Error("Row must be a live view")
	}
}

func TestNewFullAndInf(t *testing.T) {
	d := NewFull(2, 2, 3.5)
	if d.At(0, 0) != 3.5 || d.At(1, 1) != 3.5 {
		t.Error("NewFull wrong")
	}
	inf := NewInf(2, 2)
	if !semiring.IsInf(inf.At(0, 1)) {
		t.Error("NewInf wrong")
	}
}

func TestFromRowsAndClone(t *testing.T) {
	d := FromRows([][]float64{{1, 2}, {3, 4}})
	if d.At(1, 0) != 3 {
		t.Error("FromRows wrong")
	}
	c := d.Clone()
	c.Set(0, 0, 100)
	if d.At(0, 0) != 1 {
		t.Error("Clone must deep copy")
	}
	defer func() {
		if recover() == nil {
			t.Error("ragged rows should panic")
		}
	}()
	FromRows([][]float64{{1, 2}, {3}})
}

func TestEqual(t *testing.T) {
	a := FromRows([][]float64{{1, semiring.Inf}, {3, 4}})
	b := a.Clone()
	if !a.Equal(b, 0) {
		t.Error("identical matrices must be Equal")
	}
	b.Set(1, 1, 4+1e-12)
	if !a.Equal(b, 1e-9) {
		t.Error("tiny difference within eps must be Equal")
	}
	b.Set(0, 1, 5) // Inf vs finite
	if a.Equal(b, 1e-9) {
		t.Error("Inf vs finite must not be Equal")
	}
	if a.Equal(New(2, 3), 0) {
		t.Error("shape mismatch must not be Equal")
	}
}

func TestMulBruteSmallKnown(t *testing.T) {
	// (min,+) product worked by hand.
	a := FromRows([][]float64{
		{1, 5},
		{2, semiring.Inf},
	})
	b := FromRows([][]float64{
		{0, 10},
		{3, 1},
	})
	var cnt OpCount
	p, cut := MulBrute(a, b, &cnt)
	// p[0][0] = min(1+0, 5+3) = 1 (k=0); p[0][1] = min(1+10, 5+1) = 6 (k=1)
	// p[1][0] = min(2+0, ∞+3) = 2 (k=0); p[1][1] = min(2+10, ∞) = 12 (k=0)
	want := FromRows([][]float64{{1, 6}, {2, 12}})
	if !p.Equal(want, 0) {
		t.Fatalf("product =\n%v want\n%v", p, want)
	}
	if cut.At(0, 0) != 0 || cut.At(0, 1) != 1 || cut.At(1, 1) != 0 {
		t.Errorf("cut wrong: %v %v %v", cut.At(0, 0), cut.At(0, 1), cut.At(1, 1))
	}
	if cnt.Load() != 8 {
		t.Errorf("comparisons = %d, want 2*2*2 = 8", cnt.Load())
	}
}

func TestMulBruteAllInfGivesCutMinusOne(t *testing.T) {
	a := NewInf(2, 2)
	b := NewInf(2, 2)
	var cnt OpCount
	p, cut := MulBrute(a, b, &cnt)
	if !semiring.IsInf(p.At(0, 0)) || cut.At(0, 0) != -1 {
		t.Error("all-∞ product must be ∞ with cut -1")
	}
}

func TestMulBruteParMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	m := pram.New(pram.WithWorkers(4), pram.WithGrain(8))
	for _, dims := range [][3]int{{1, 1, 1}, {3, 4, 5}, {16, 16, 16}, {7, 13, 5}} {
		a := randMat(rng, dims[0], dims[1])
		b := randMat(rng, dims[1], dims[2])
		var c1, c2 OpCount
		p1, cut1 := MulBrute(a, b, &c1)
		p2, cut2 := MulBrutePar(m, a, b, &c2)
		if !p1.Equal(p2, 0) {
			t.Fatalf("dims %v: parallel product differs", dims)
		}
		for i := 0; i < cut1.R; i++ {
			for j := 0; j < cut1.C; j++ {
				if cut1.At(i, j) != cut2.At(i, j) {
					t.Fatalf("dims %v: cut differs at (%d,%d)", dims, i, j)
				}
			}
		}
		if c1.Load() != c2.Load() {
			t.Errorf("dims %v: comparison counts differ: %d vs %d", dims, c1.Load(), c2.Load())
		}
	}
}

func TestMulAssociativity(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	a := randMat(rng, 4, 5)
	b := randMat(rng, 5, 6)
	c := randMat(rng, 6, 3)
	var cnt OpCount
	ab, _ := MulBrute(a, b, &cnt)
	abc1, _ := MulBrute(ab, c, &cnt)
	bc, _ := MulBrute(b, c, &cnt)
	abc2, _ := MulBrute(a, bc, &cnt)
	if !abc1.Equal(abc2, 1e-9) {
		t.Error("(min,+) product must be associative")
	}
}

func TestValueFromCut(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	a := randMat(rng, 6, 7)
	b := randMat(rng, 7, 4)
	var cnt OpCount
	p, cut := MulBrute(a, b, &cnt)
	if got := ValueFromCut(a, b, cut); !got.Equal(p, 0) {
		t.Error("ValueFromCut must reconstruct the product")
	}
}

func TestDimensionMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("dimension mismatch should panic")
		}
	}()
	var cnt OpCount
	MulBrute(New(2, 3), New(4, 2), &cnt)
}

func TestOpCountNilSafe(t *testing.T) {
	var c *OpCount
	c.Add(5) // must not panic
	if c.Load() != 0 {
		t.Error("nil OpCount should load 0")
	}
	c.Reset()
	var real OpCount
	real.Add(3)
	real.Add(4)
	if real.Load() != 7 {
		t.Error("OpCount arithmetic wrong")
	}
	real.Reset()
	if real.Load() != 0 {
		t.Error("Reset failed")
	}
}

func TestIntMat(t *testing.T) {
	m := NewInt(2, 2)
	m.Set(0, 1, 42)
	m.Set(1, 0, -1)
	if m.At(0, 1) != 42 || m.At(1, 0) != -1 || m.At(0, 0) != 0 {
		t.Error("IntMat wrong")
	}
}

func TestStringRendering(t *testing.T) {
	d := FromRows([][]float64{{1, semiring.Inf}})
	if s := d.String(); s != "1 ∞\n" {
		t.Errorf("String() = %q", s)
	}
}
