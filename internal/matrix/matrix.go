// Package matrix provides dense float64 matrices over the (min,+) semiring
// together with the general (non-concave) matrix product that serves as the
// paper's O(n³)-comparison baseline, in both sequential and PRAM-parallel
// form. Cut (argmin) matrices are represented as IntMat.
//
// All products count comparisons through an OpCount so that experiment E2
// can contrast the Θ(pqr) comparisons of the general algorithm against the
// O(n²) comparisons of the concave algorithm in package monge.
package matrix

import (
	"fmt"
	"math"
	"strings"
	"sync/atomic"

	"partree/internal/pool"
	"partree/internal/pram"
	"partree/internal/procid"
	"partree/internal/semiring"
)

// opStripes is the stripe count of an OpCount: enough that on common
// core counts each P lands on its own stripe. Power of two for the mask.
const opStripes = 16

// OpCount counts comparison operations across (possibly parallel) matrix
// products. The zero value is ready to use.
//
// The counter is striped by the caller's P onto cache-line-padded cells:
// every parallel scan body charges comparisons as it runs, so a single
// shared atomic would be the most contended word in the whole monge
// layer — all workers bouncing one cache line on every scan. Load and
// Reset sum/zero the stripes; they are coherent only between parallel
// statements (the usual read point), not mid-statement.
type OpCount struct {
	stripes [opStripes]struct {
		n atomic.Int64
		_ [56]byte // one stripe per cache line
	}
}

// Add records k comparisons.
func (c *OpCount) Add(k int64) {
	if c != nil {
		c.stripes[procid.Cur()&(opStripes-1)].n.Add(k)
	}
}

// Load returns the number of comparisons recorded so far.
func (c *OpCount) Load() int64 {
	if c == nil {
		return 0
	}
	var n int64
	for i := range c.stripes {
		n += c.stripes[i].n.Load()
	}
	return n
}

// Reset zeroes the counter.
func (c *OpCount) Reset() {
	if c != nil {
		for i := range c.stripes {
			c.stripes[i].n.Store(0)
		}
	}
}

// Dense is a dense R×C float64 matrix in row-major layout.
type Dense struct {
	R, C int
	v    []float64
	// pooled marks a matrix whose slab came from the workspace arena;
	// released flips on Release so double releases fail loudly.
	pooled   bool
	released bool
}

// New returns an R×C matrix of zeros.
func New(r, c int) *Dense {
	if r < 0 || c < 0 {
		panic("matrix: negative dimension")
	}
	return &Dense{R: r, C: c, v: make([]float64, r*c)}
}

// NewFromPool returns an R×C zero matrix whose slab is drawn from the
// workspace arena. Call Release when the matrix is no longer needed;
// forgetting to is safe (the slab is simply collected) but forfeits the
// reuse.
func NewFromPool(r, c int) *Dense {
	if r < 0 || c < 0 {
		panic("matrix: negative dimension")
	}
	return &Dense{R: r, C: c, v: pool.Float64s(r * c), pooled: true}
}

// NewInfFromPool returns a pool-backed R×C matrix filled with +∞.
func NewInfFromPool(r, c int) *Dense {
	d := NewFromPool(r, c)
	for i := range d.v {
		d.v[i] = semiring.Inf
	}
	return d
}

// Release returns the matrix's slab to the workspace arena. The matrix
// must not be used afterwards: its storage is dropped, so any access
// panics rather than silently reading recycled memory. Releasing twice
// panics.
func (d *Dense) Release() {
	if d == nil {
		return
	}
	if d.released {
		panic("matrix: double release of Dense")
	}
	d.released = true
	if d.pooled {
		pool.PutFloat64s(d.v)
	}
	d.v = nil
}

// NewFull returns an R×C matrix with every entry set to fill.
func NewFull(r, c int, fill float64) *Dense {
	d := New(r, c)
	for i := range d.v {
		d.v[i] = fill
	}
	return d
}

// NewInf returns an R×C matrix filled with the semiring's +∞.
func NewInf(r, c int) *Dense { return NewFull(r, c, semiring.Inf) }

// FromRows builds a matrix from a slice of equal-length rows.
func FromRows(rows [][]float64) *Dense {
	r := len(rows)
	if r == 0 {
		return New(0, 0)
	}
	c := len(rows[0])
	d := New(r, c)
	for i, row := range rows {
		if len(row) != c {
			panic("matrix: ragged rows")
		}
		copy(d.v[i*c:(i+1)*c], row)
	}
	return d
}

// At returns the (i,j) entry.
func (d *Dense) At(i, j int) float64 { d.check(); return d.v[i*d.C+j] }

// Set stores v at (i,j).
func (d *Dense) Set(i, j int, v float64) { d.check(); d.v[i*d.C+j] = v }

// Row returns a live view of row i (not a copy).
func (d *Dense) Row(i int) []float64 { d.check(); return d.v[i*d.C : (i+1)*d.C] }

// Clone returns a deep copy.
func (d *Dense) Clone() *Dense {
	out := New(d.R, d.C)
	copy(out.v, d.v)
	return out
}

// Equal reports whether d and o have identical shape and entries within eps
// (with equal infinities treated as equal).
func (d *Dense) Equal(o *Dense, eps float64) bool {
	if d.R != o.R || d.C != o.C {
		return false
	}
	for i, v := range d.v {
		w := o.v[i]
		if v == w {
			continue
		}
		if math.IsInf(v, 1) || math.IsInf(w, 1) {
			return false
		}
		if math.Abs(v-w) > eps && math.Abs(v-w) > eps*math.Max(math.Abs(v), math.Abs(w)) {
			return false
		}
	}
	return true
}

// String renders the matrix for debugging; +∞ prints as "∞".
func (d *Dense) String() string {
	var b strings.Builder
	for i := 0; i < d.R; i++ {
		for j := 0; j < d.C; j++ {
			if j > 0 {
				b.WriteByte(' ')
			}
			v := d.At(i, j)
			if semiring.IsInf(v) {
				b.WriteString("∞")
			} else {
				fmt.Fprintf(&b, "%g", v)
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// IntMat is a dense R×C int32 matrix, used for Cut (argmin) tables.
type IntMat struct {
	R, C int
	v    []int32
	// pooled/released: see Dense.
	pooled   bool
	released bool
}

// NewInt returns an R×C integer matrix of zeros.
func NewInt(r, c int) *IntMat {
	if r < 0 || c < 0 {
		panic("matrix: negative dimension")
	}
	return &IntMat{R: r, C: c, v: make([]int32, r*c)}
}

// NewIntFromPool returns an R×C zero integer matrix backed by the
// workspace arena; see NewFromPool for the ownership contract.
func NewIntFromPool(r, c int) *IntMat {
	if r < 0 || c < 0 {
		panic("matrix: negative dimension")
	}
	return &IntMat{R: r, C: c, v: pool.Int32s(r * c), pooled: true}
}

// Release returns the cut table's slab to the arena; the table must not
// be used afterwards. Releasing twice panics.
func (m *IntMat) Release() {
	if m == nil {
		return
	}
	if m.released {
		panic("matrix: double release of IntMat")
	}
	m.released = true
	if m.pooled {
		pool.PutInt32s(m.v)
	}
	m.v = nil
}

// At returns the (i,j) entry.
func (m *IntMat) At(i, j int) int { m.check(); return int(m.v[i*m.C+j]) }

// Set stores v at (i,j).
func (m *IntMat) Set(i, j, v int) { m.check(); m.v[i*m.C+j] = int32(v) }

// MulBrute computes the (min,+) product AB by examining every k for every
// output entry: Θ(p·q·r) comparisons. It returns the product and the Cut
// matrix (smallest minimizing k per entry; -1 where every candidate is +∞).
func MulBrute(a, b *Dense, cnt *OpCount) (*Dense, *IntMat) {
	if a.C != b.R {
		panic("matrix: dimension mismatch")
	}
	p, q, r := a.R, a.C, b.C
	out := NewInf(p, r)
	cut := NewInt(p, r)
	for i := 0; i < p; i++ {
		arow := a.Row(i)
		for j := 0; j < r; j++ {
			best, arg := semiring.Inf, -1
			for k := 0; k < q; k++ {
				if s := arow[k] + b.At(k, j); s < best {
					best, arg = s, k
				}
			}
			out.Set(i, j, best)
			cut.Set(i, j, arg)
		}
	}
	cnt.Add(int64(p) * int64(q) * int64(r))
	return out, cut
}

// MulBrutePar computes the (min,+) product on a PRAM: one virtual processor
// per output entry, each scanning all q candidates (the "parallelization of
// dynamic programming" the paper improves upon). Comparisons are still
// Θ(p·q·r); the step count is ⌈pr/P⌉·q-ish under Brent scheduling.
func MulBrutePar(m *pram.Machine, a, b *Dense, cnt *OpCount) (*Dense, *IntMat) {
	if a.C != b.R {
		panic("matrix: dimension mismatch")
	}
	p, q, r := a.R, a.C, b.C
	out := NewInf(p, r)
	cut := NewInt(p, r)
	m.For(p*r, func(e int) {
		i, j := e/r, e%r
		arow := a.Row(i)
		best, arg := semiring.Inf, -1
		for k := 0; k < q; k++ {
			if s := arow[k] + b.At(k, j); s < best {
				best, arg = s, k
			}
		}
		out.Set(i, j, best)
		cut.Set(i, j, arg)
	})
	cnt.Add(int64(p) * int64(q) * int64(r))
	return out, cut
}

// ValueFromCut reconstructs the product value matrix from a Cut table:
// (AB)[i][j] = A[i][k] + B[k][j] with k = Cut[i][j]; entries with cut -1
// are +∞. This is the paper's observation that computing Cut(A,B) suffices,
// since AB follows in O(1) time per entry.
func ValueFromCut(a, b *Dense, cut *IntMat) *Dense {
	out := NewInf(cut.R, cut.C)
	for i := 0; i < cut.R; i++ {
		for j := 0; j < cut.C; j++ {
			if k := cut.At(i, j); k >= 0 {
				out.Set(i, j, a.At(i, k)+b.At(k, j))
			}
		}
	}
	return out
}
