//go:build !pooldebug

package matrix

// check is the use-after-release detector; in release builds it is an
// empty inlined method, so At/Set/Row pay nothing for it. (A released
// matrix still fails fast in release builds — Release drops the slab, so
// any access panics on the nil slice — but without the targeted message.)
func (d *Dense) check()  {}
func (m *IntMat) check() {}
