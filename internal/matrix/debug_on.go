//go:build pooldebug

package matrix

// check panics with a targeted message when a released matrix is
// accessed. Compiled in only under the pooldebug build tag.
func (d *Dense) check() {
	if d.released {
		panic("matrix: use of Dense after Release")
	}
}

func (m *IntMat) check() {
	if m.released {
		panic("matrix: use of IntMat after Release")
	}
}
