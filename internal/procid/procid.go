// Package procid exposes a cheap identity for the P (logical processor)
// the calling goroutine is currently scheduled on. It is the shard key
// for every contention-sharded structure in the repository: the
// workspace arena's per-worker free lists (internal/pool) and the
// striped operation counters (internal/matrix.OpCount).
//
// Why the P and not the pram worker id: goroutines have no addressable
// local storage in pure Go, so a worker id set by the scheduler cannot
// be recovered inside a leaf allocation call without threading it
// through every kernel signature. The P id is the true concurrency
// domain anyway — two goroutines on the same P never run simultaneously,
// so structures sharded by P see at most GOMAXPROCS concurrent writers
// and, in the common case, exactly one per shard.
//
// The id comes from runtime.procPin/procUnpin via go:linkname (the same
// mechanism sync.Pool uses for its per-P caches). The pin is released
// immediately: callers use the id as a shard *hint*, so a goroutine
// migrating between the read and the shard access merely lands on a
// neighbouring shard's mutex — correctness never depends on the hint.
package procid

import (
	_ "unsafe" // for go:linkname
)

//go:linkname procPin runtime.procPin
func procPin() int

//go:linkname procUnpin runtime.procUnpin
func procUnpin()

// Cur returns the id of the P the caller is running on: a small integer
// in [0, GOMAXPROCS). The value is a scheduling-domain hint, not a
// stable goroutine identity — the goroutine may migrate immediately
// after the call returns.
func Cur() int {
	p := procPin()
	procUnpin()
	return p
}
