package semiring

import (
	"math"
	"testing"
	"testing/quick"
)

func TestInfIdentityAndAbsorption(t *testing.T) {
	if Min(Inf, 3) != 3 || Min(3, Inf) != 3 {
		t.Error("+∞ must be the identity of min")
	}
	if !IsInf(Plus(Inf, 5)) || !IsInf(Plus(5, Inf)) {
		t.Error("+∞ must be absorbing for +")
	}
	if !IsInf(Inf) || IsInf(0) || IsInf(math.Inf(-1)) {
		t.Error("IsInf misclassifies")
	}
}

func TestMin(t *testing.T) {
	if Min(2, 3) != 2 || Min(3, 2) != 2 || Min(-1, -1) != -1 {
		t.Error("Min wrong")
	}
}

func TestMinIdxSmallestTieBreak(t *testing.T) {
	xs := []float64{5, 2, 7, 2, 1, 1, 9}
	v, k := MinIdx(xs, 0, len(xs))
	if v != 1 || k != 4 {
		t.Errorf("MinIdx = (%v,%d), want (1,4): smallest index wins ties", v, k)
	}
	v, k = MinIdx(xs, 1, 4)
	if v != 2 || k != 1 {
		t.Errorf("MinIdx over [1,4) = (%v,%d), want (2,1)", v, k)
	}
}

func TestMinIdxEmptyAndAllInf(t *testing.T) {
	xs := []float64{Inf, Inf}
	v, k := MinIdx(xs, 0, 2)
	if !IsInf(v) || k != 0 {
		t.Errorf("all-∞ MinIdx = (%v,%d), want (+∞,0)", v, k)
	}
	v, k = MinIdx(xs, 1, 1)
	if !IsInf(v) || k != 1 {
		t.Errorf("empty MinIdx = (%v,%d), want (+∞,lo)", v, k)
	}
}

func TestSum(t *testing.T) {
	if Sum(nil) != 0 || Sum([]float64{1, 2, 3.5}) != 6.5 {
		t.Error("Sum wrong")
	}
}

// Semiring laws on finite values: min is associative/commutative with
// identity Inf; + distributes over min.
func TestSemiringLaws(t *testing.T) {
	prop := func(a, b, c float64) bool {
		if math.IsNaN(a) || math.IsNaN(b) || math.IsNaN(c) {
			return true
		}
		if Min(a, Min(b, c)) != Min(Min(a, b), c) {
			return false
		}
		if Min(a, b) != Min(b, a) {
			return false
		}
		if Min(a, Inf) != a {
			return false
		}
		// Distributivity: a + min(b,c) == min(a+b, a+c).
		return Plus(a, Min(b, c)) == Min(Plus(a, b), Plus(a, c))
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}
