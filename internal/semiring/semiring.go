// Package semiring implements the (min,+) closed semiring over float64
// extended with +∞, the algebra in which all of the paper's dynamic
// programs and matrix products are expressed (Section 4: "Matrix
// multiplication shall be defined over the closed semiring (min,+)").
//
// The additive operation of the semiring is min (identity +∞) and the
// multiplicative operation is + (identity 0). +∞ is absorbing for +.
package semiring

import "math"

// Inf is the additive identity of the (min,+) semiring.
var Inf = math.Inf(1)

// IsInf reports whether v is the semiring's +∞.
func IsInf(v float64) bool { return math.IsInf(v, 1) }

// Plus is the semiring's multiplicative operation: ordinary addition with
// +∞ absorbing. (Go's float64 addition already satisfies this; Plus exists
// to document intent at call sites.)
func Plus(a, b float64) float64 { return a + b }

// Min is the semiring's additive operation.
func Min(a, b float64) float64 {
	if b < a {
		return b
	}
	return a
}

// MinIdx returns the minimum of xs[lo:hi] together with the smallest index
// attaining it, following the paper's tie-break rule for Cut matrices ("if
// there is more than one value of k for which that sum is minimized, take
// the smallest"). It returns (+∞, lo) for an empty range.
func MinIdx(xs []float64, lo, hi int) (float64, int) {
	best, arg := Inf, lo
	for k := lo; k < hi; k++ {
		if xs[k] < best {
			best, arg = xs[k], k
		}
	}
	return best, arg
}

// Sum returns the ordinary sum of xs (used for weight prefix sums, not a
// semiring operation).
func Sum(xs []float64) float64 {
	s := 0.0
	for _, v := range xs {
		s += v
	}
	return s
}
