package tune

import (
	"math/bits"
	"runtime"
	"time"

	"partree/internal/pram"
)

// Config controls a calibration run.
type Config struct {
	// Quick trades precision for speed: fewer repetitions and smaller
	// sweep inputs. Meant for tests and CI smoke runs; production
	// profiles should use the full sweep.
	Quick bool
}

// Calibrate micro-benchmarks the running host and derives a complete
// tuning profile. The sweep is deterministic (fixed inputs, fixed
// repetition counts, best-of-reps timing, no RNG beyond a fixed-seed
// xorshift for matrix fill) and self-contained: it builds its own PRAM
// machines and touches no global state, so it is safe to run concurrently
// with live traffic and install the result with SetActive afterwards.
//
// Full sweeps take well under a second on anything resembling a server;
// Quick sweeps take a few tens of milliseconds.
func Calibrate(cfg Config) *Profile {
	reps := 5
	if cfg.Quick {
		reps = 2
	}
	host := currentHost()
	ms := Measured{
		LoopNs:   measureLoop(reps, cfg.Quick),
		ScanNs:   measureScan(reps, cfg.Quick),
		WordNs:   measureWord(reps, cfg.Quick),
		RowNs:    measureRow(reps, cfg.Quick),
		InlineNs: measureInline(reps),
	}
	ms.DispatchNs = measureDispatch(reps, ms.InlineNs)
	ms.StealNs = measureSteal()
	t := derive(ms, host)
	t.BoolmatKTileBytes = sweepKTile(cfg.Quick)
	return &Profile{
		Version:   CurrentVersion,
		CreatedAt: time.Now().UTC().Format(time.RFC3339),
		Source:    "calibrated",
		Host:      host,
		Measured:  ms,
		Tuned:     t,
	}
}

// derive maps raw measurements to tuned knobs. Every formula is clamped
// to a sane range well inside Validate's hard bounds, so a pathological
// measurement (a descheduled timing, a zero) can only cost performance,
// never correctness.
func derive(ms Measured, host Host) Tuned {
	// A fixed-grain chunk should carry enough body work to bury the
	// scheduler's per-chunk cost while leaving plenty of chunks for
	// stealing to rebalance: aim at about two dispatches' worth of work
	// per chunk.
	spread := clampF(2*ms.DispatchNs, 2_000, 20_000)

	// A serial cutover pays off once the statement's whole body, run
	// serially, costs less than roughly the dispatch it avoids; cutting
	// over a little early (2×) also skips the statements the subtree
	// below would have issued.
	serialNs := 2 * ms.DispatchNs

	boolSerial := clampI(int(serialNs/nonzero(ms.WordNs, 0.05)), 2_048, 1<<20)
	return Tuned{
		GrainMonge:  clampI(int(spread/nonzero(ms.ScanNs, 0.1)), 256, 16_384),
		GrainDP:     clampI(int(spread/nonzero(ms.LoopNs, 0.1)), 256, 8_192),
		GrainHufpar: clampI(int(spread/nonzero(2*ms.LoopNs, 0.2)), 128, 4_096),
		GrainLinCFL: clampI(int(spread/nonzero(ms.RowNs, 1)), 16, 256),
		// Batch statements schedule jobs, not indices: one job per chunk
		// keeps every job boundary a cancellation checkpoint. Not a
		// candidate for calibration.
		GrainBatch: 1,

		GrainTargetNs: clampI(int(25*ms.DispatchNs), 50_000, 200_000),

		// Filled by sweepKTile (measured directly, not derived).
		BoolmatKTileBytes: 1 << 18,

		BoolmatSerialWords: boolSerial,
		MongeSerialEntries: clampI(int(serialNs/nonzero(ms.ScanNs, 0.1)), 1_024, 65_536),
		// lincfl products additionally pay per-product phase bookkeeping
		// on top of the statement dispatch, so cut over at twice the
		// boolmat threshold.
		LinCFLSerialWords: clampI(2*boolSerial, 2_048, 1<<20),

		SMAWKRowBlock: clampI(int(spread/nonzero(ms.ScanNs, 0.1))/16, 32, 512),

		// Service-path sizing scales with the core count: more cores run
		// more concurrent batchers (machines to pool) and drain bigger
		// batches per For.
		MachinePoolCap: clampI(2*host.NumCPU+2, 16, 64),
		MaxBatch:       clampI(16*host.NumCPU, 64, 512),
		ArenaShards:    clampI(host.NumCPU, 1, 64),
	}
}

func clampI(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

func clampF(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// nonzero guards division by a measurement that came back ~0.
func nonzero(v, floor float64) float64 {
	if v < floor {
		return floor
	}
	return v
}

// sink defeats dead-code elimination across the measurement loops.
var sink float64

var sinkWord uint64

// bestOf runs f reps times and returns the minimum — the least-disturbed
// sample, the standard defense against scheduler noise in microbenches.
func bestOf(reps int, f func() float64) float64 {
	best := f()
	for i := 1; i < reps; i++ {
		if v := f(); v < best {
			best = v
		}
	}
	return best
}

// measureLoop times the dense-DP body shape: one float multiply-add per
// element. Returns ns/element.
func measureLoop(reps int, quick bool) float64 {
	n := 1 << 16
	if quick {
		n = 1 << 14
	}
	return bestOf(reps, func() float64 {
		acc := 0.0
		start := time.Now()
		for i := 0; i < n; i++ {
			acc += float64(i)*1.0000001 + 0.5
		}
		el := time.Since(start)
		sink += acc
		return float64(el.Nanoseconds()) / float64(n)
	})
}

// measureScan times monge's body shape: bracketed argmin scans over a
// float table. Returns ns per scanned element.
func measureScan(reps int, quick bool) float64 {
	n := 1 << 14
	if quick {
		n = 1 << 12
	}
	vals := make([]float64, 4096)
	for i := range vals {
		vals[i] = float64((i*2654435761)%4096) * 0.001
	}
	const bracket = 8
	return bestOf(reps, func() float64 {
		argAcc := 0
		start := time.Now()
		for i := 0; i < n; i++ {
			lo := (i * 613) & (len(vals) - bracket - 1)
			best, arg := vals[lo], lo
			for k := lo + 1; k < lo+bracket; k++ {
				if vals[k] < best {
					best, arg = vals[k], k
				}
			}
			argAcc += arg
		}
		el := time.Since(start)
		sink += float64(argAcc)
		return float64(el.Nanoseconds()) / float64(n*bracket)
	})
}

// measureWord times the boolmat inner unit: one 64-bit OR plus the load
// and store around it. Returns ns/word.
func measureWord(reps int, quick bool) float64 {
	words := 1 << 12
	iters := 64
	if quick {
		iters = 16
	}
	src := make([]uint64, words)
	dst := make([]uint64, words)
	for i := range src {
		src[i] = uint64(i)*0x9e3779b97f4a7c15 + 1
	}
	return bestOf(reps, func() float64 {
		start := time.Now()
		for it := 0; it < iters; it++ {
			for i := 0; i < words; i++ {
				dst[i] |= src[i]
			}
			dst[it&(words-1)] = 0 // keep the OR from becoming a no-op
		}
		el := time.Since(start)
		sinkWord += dst[0]
		return float64(el.Nanoseconds()) / float64(words*iters)
	})
}

// measureRow times one boolmat-style row OR: 32 packed words ORed into an
// accumulator row, the per-index unit of MulPar under lincfl's block
// sizes. Returns ns/row.
func measureRow(reps int, quick bool) float64 {
	const rowWords = 32
	rows := 1 << 10
	if quick {
		rows = 1 << 8
	}
	b := make([]uint64, 64*rowWords)
	for i := range b {
		b[i] = uint64(i) * 0x9e3779b97f4a7c15
	}
	acc := make([]uint64, rowWords)
	return bestOf(reps, func() float64 {
		start := time.Now()
		for r := 0; r < rows; r++ {
			row := b[(r&63)*rowWords : (r&63+1)*rowWords]
			for x := range acc {
				acc[x] |= row[x]
			}
		}
		el := time.Since(start)
		sinkWord += acc[0]
		return float64(el.Nanoseconds()) / float64(rows)
	})
}

// measureInline times the For fast path: a statement that fits one chunk
// runs inline on the caller, paying only the machine's bookkeeping.
// Returns ns/statement.
func measureInline(reps int) float64 {
	m := pram.New(pram.WithWorkers(2), pram.WithGrain(1<<16))
	defer m.Close()
	var c int64
	m.For(64, func(i int) { c++ }) // warm the path
	const iters = 2_000
	return bestOf(reps, func() float64 {
		start := time.Now()
		for it := 0; it < iters; it++ {
			m.For(64, func(i int) { c++ })
		}
		el := time.Since(start)
		sink += float64(c)
		return float64(el.Nanoseconds()) / float64(iters)
	})
}

// measureDispatch times a genuinely parallel statement on the resident
// pool — partition, wake, execute, barrier — and subtracts the inline
// bookkeeping floor, leaving the cost the serial cutovers can avoid.
// Returns ns/statement.
func measureDispatch(reps int, inlineNs float64) float64 {
	w := runtime.GOMAXPROCS(0)
	if w < 2 {
		w = 2
	}
	if w > 8 {
		w = 8
	}
	grain := 64 / w
	if grain < 1 {
		grain = 1
	}
	m := pram.New(pram.WithWorkers(w), pram.WithGrain(grain))
	defer m.Close()
	var c [64]int64
	m.For(64, func(i int) { c[i]++ }) // spawn the pool outside the timing
	const iters = 1_000
	per := bestOf(reps, func() float64 {
		start := time.Now()
		for it := 0; it < iters; it++ {
			m.For(64, func(i int) { c[i]++ })
		}
		el := time.Since(start)
		return float64(el.Nanoseconds()) / float64(iters)
	})
	sink += float64(c[0])
	d := per - inlineNs
	if d < 0 {
		d = 0
	}
	return d
}

// measureSteal reads the scheduler's own accounting on a deliberately
// skewed statement: ns of steal-hunting per steal event. Returns 0 if
// the probe saw no steals (single-core hosts).
func measureSteal() float64 {
	m := pram.New(pram.WithWorkers(2), pram.WithGrain(1))
	defer m.Close()
	for it := 0; it < 8; it++ {
		m.For(256, func(i int) {
			if i%64 == 0 {
				acc := 0.0
				for k := 0; k < 2_000; k++ {
					acc += float64(k) * 1.0000001
				}
				sink += acc
			}
		})
	}
	s := m.Stats()
	if s.Steals == 0 {
		return 0
	}
	return float64(s.StealWait.Nanoseconds()) / float64(s.Steals)
}

// sweepKTile measures the blocked Boolean multiply's cache behaviour
// directly: a local replica of boolmat's k-tiled kernel (row-major packed
// words, zero-skip via trailing-zero scans) multiplies a fixed
// pseudo-random matrix by itself under each candidate budget, and the
// fastest budget wins. Replicating ~30 lines here keeps tune free of a
// boolmat dependency (boolmat sits above engine, which sits above tune).
func sweepKTile(quick bool) int {
	n := 768
	reps := 3
	if quick {
		n = 384
		reps = 1
	}
	words := (n + 63) >> 6
	a := make([]uint64, n*words)
	st := uint64(0x243f6a8885a308d3)
	for i := range a {
		// xorshift64*: fixed seed, ~6% density after masking.
		st ^= st >> 12
		st ^= st << 25
		st ^= st >> 27
		v := st * 0x2545f4914f6cdd1d
		a[i] = v & (v >> 1) & (v >> 2) & (v >> 3)
	}
	out := make([]uint64, n*words)
	mulBudget := func(budget int) time.Duration {
		for i := range out {
			out[i] = 0
		}
		kt := budget / (words * 8)
		kt &^= 63
		if kt < 64 {
			kt = 64
		}
		start := time.Now()
		for k0 := 0; k0 < n; k0 += kt {
			k1 := k0 + kt
			if k1 > n {
				k1 = n
			}
			w0, w1 := k0>>6, (k1+63)>>6
			for i := 0; i < n; i++ {
				arow := a[i*words : (i+1)*words]
				orow := out[i*words : (i+1)*words]
				for w := w0; w < w1; w++ {
					bw := arow[w]
					for bw != 0 {
						k := w<<6 + bits.TrailingZeros64(bw)
						bw &= bw - 1
						brow := a[k*words : (k+1)*words]
						for x := range orow {
							orow[x] |= brow[x]
						}
					}
				}
			}
		}
		return time.Since(start)
	}
	candidates := []int{1 << 17, 1 << 18, 1 << 19, 1 << 20}
	best, bestT := 1<<18, time.Duration(1<<62)
	for _, budget := range candidates {
		t := mulBudget(budget)
		for r := 1; r < reps; r++ {
			if tr := mulBudget(budget); tr < t {
				t = tr
			}
		}
		if t < bestT {
			best, bestT = budget, t
		}
	}
	sinkWord += out[0]
	return best
}
