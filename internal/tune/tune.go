// Package tune holds the host-calibrated tuning profile behind every
// runtime knob that used to be a static constant: PRAM grains and the
// adaptive controller's chunk-cost target, the kernels' serial-cutover
// thresholds, boolmat's cache-tile budget, SMAWK's row blocking, and the
// machine-pool / arena-shard / batch sizing of the serving path.
//
// A Profile is either the built-in Defaults (which reproduce the
// pre-calibration static constants bit for bit — every cutover disabled),
// the output of Calibrate (a short deterministic micro-benchmark sweep of
// the running host), or a JSON file written by a previous calibration and
// reloaded with Load. One profile is installed process-wide with
// SetActive; internal/engine exposes it to the kernels as a set of view
// functions, so the whole stack — kernels, façade, serving path — follows
// the active profile without threading a parameter through every call.
//
// Profiles are versioned and hashed: Hash covers the version, host shape
// and every measured/tuned value (but not the creation time or source
// label), so two runs that derived the same numbers agree on identity and
// /statsz can report exactly which tuning a serving process runs under.
package tune

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"runtime"
	"sync/atomic"
)

// CurrentVersion is the profile schema version. Load rejects files whose
// version differs: tuned fields mean nothing across schema changes, and a
// silent partial decode would install garbage thresholds.
const CurrentVersion = 1

// Host records the machine shape a profile was calibrated on. A profile
// loaded on a different shape still validates — the values are safe, just
// possibly stale — and IsStale flags the mismatch for /statsz.
type Host struct {
	GOOS      string `json:"goos"`
	GOARCH    string `json:"goarch"`
	NumCPU    int    `json:"num_cpu"`
	GoVersion string `json:"go_version"`
}

// Measured holds the raw micro-benchmark results the tuned values are
// derived from, kept in the profile so a human (or a later version of the
// deriver) can audit where a threshold came from.
type Measured struct {
	// LoopNs is the cost of one cheap float-arithmetic loop iteration —
	// the body shape of the dense DP kernels (obst, shannonfano).
	LoopNs float64 `json:"loop_ns_per_elem"`
	// ScanNs is the per-scanned-element cost of a bracketed argmin scan —
	// the body shape of monge's interpolation statements.
	ScanNs float64 `json:"scan_ns_per_elem"`
	// WordNs is the cost of one 64-bit word OR — the inner unit of the
	// boolmat kernels.
	WordNs float64 `json:"word_ns_per_op"`
	// RowNs is the cost of OR-ing one packed 32-word matrix row — the
	// per-index unit of boolmat.MulPar as lincfl drives it.
	RowNs float64 `json:"row_ns_per_row"`
	// DispatchNs is the wall cost of one parallel statement on the
	// resident worker pool (partition + wake + barrier), beyond the
	// body's own work. This is the constant the serial cutovers amortize.
	DispatchNs float64 `json:"dispatch_ns_per_stmt"`
	// InlineNs is the wall cost of one inline (single-chunk) statement —
	// the For fast path's bookkeeping floor.
	InlineNs float64 `json:"inline_ns_per_stmt"`
	// StealNs is the measured cost per successful chunk steal, from the
	// scheduler's own StealWait/Steals counters on a deliberately skewed
	// statement. 0 when the probe observed no steals.
	StealNs float64 `json:"steal_ns_per_steal"`
}

// Tuned is the complete set of runtime knobs. Every field replaces a
// constant that used to be hard-coded somewhere in the tree; the comment
// on each names the consumer.
type Tuned struct {
	// Per-family fixed grains (pram.WithGrain), read by internal/engine's
	// Grain* views: benchtables and the service use them when pinning a
	// machine's chunk size for a known kernel family.
	GrainMonge  int `json:"grain_monge"`
	GrainDP     int `json:"grain_dp"`
	GrainHufpar int `json:"grain_hufpar"`
	GrainLinCFL int `json:"grain_lincfl"`
	GrainBatch  int `json:"grain_batch"`

	// GrainTargetNs is the adaptive grain controller's per-chunk work
	// target (pram.WithGrainTarget): chunks sized to carry about this
	// many nanoseconds of measured body work.
	GrainTargetNs int `json:"grain_target_ns"`

	// BoolmatKTileBytes is the blocked Boolean multiply's cache budget:
	// bytes of B rows kept resident per k-tile (boolmat.mulKTile).
	BoolmatKTileBytes int `json:"boolmat_ktile_bytes"`

	// BoolmatSerialWords: boolmat.MulPar runs serially (blocked Mul, one
	// counted step) when the product's dense-worst-case word-OR estimate
	// is at or below this. 0 disables the cutover.
	BoolmatSerialWords int `json:"boolmat_serial_words"`

	// MongeSerialEntries: monge's recursive cut engine drops to the
	// serial strided recursion when a level's p·r entry count is at or
	// below this. 0 disables the cutover.
	MongeSerialEntries int `json:"monge_serial_entries"`

	// LinCFLSerialWords: lincfl's separator recursion multiplies block
	// matrices with the serial blocked kernel (skipping the PRAM
	// statement and its phase bookkeeping) when the product estimate is
	// at or below this. 0 disables the cutover.
	LinCFLSerialWords int `json:"lincfl_serial_words"`

	// SMAWKRowBlock is the rows-per-task blocking of monge.CutSMAWKPar.
	SMAWKRowBlock int `json:"smawk_row_block"`

	// MachinePoolCap bounds each Options shape's façade machine free
	// list (partree machine pool).
	MachinePoolCap int `json:"machine_pool_cap"`

	// MaxBatch is internal/serve's default jobs-per-batch cut.
	MaxBatch int `json:"max_batch"`

	// ArenaShards sizes the workspace arena's per-P shard count
	// (internal/pool.SetShards) in cmd/partreed. 0 keeps the serving
	// binary's worker-count-based sizing.
	ArenaShards int `json:"arena_shards"`
}

// Profile is a complete tuning profile: identity, provenance, raw
// measurements and derived knobs. Treat profiles as immutable once
// installed with SetActive — the engine views read them lock-free.
type Profile struct {
	Version   int      `json:"version"`
	CreatedAt string   `json:"created_at,omitempty"`
	Source    string   `json:"source"`
	Host      Host     `json:"host"`
	Measured  Measured `json:"measured"`
	Tuned     Tuned    `json:"tuned"`
}

// currentHost describes the running process.
func currentHost() Host {
	return Host{
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		NumCPU:    runtime.NumCPU(),
		GoVersion: runtime.Version(),
	}
}

// Defaults returns the built-in profile: the exact static constants the
// tree shipped with before calibration existed. Every serial cutover is
// disabled (0), so a process running Defaults behaves identically to the
// pre-tuning runtime — that equivalence is what the E15 experiment's
// baseline arm measures.
func Defaults() *Profile {
	return &Profile{
		Version: CurrentVersion,
		Source:  "defaults",
		Host:    currentHost(),
		Tuned: Tuned{
			GrainMonge:         2048,
			GrainDP:            1024,
			GrainHufpar:        512,
			GrainLinCFL:        64,
			GrainBatch:         1,
			GrainTargetNs:      100_000,
			BoolmatKTileBytes:  1 << 18,
			BoolmatSerialWords: 0,
			MongeSerialEntries: 0,
			LinCFLSerialWords:  0,
			SMAWKRowBlock:      128,
			MachinePoolCap:     16,
			MaxBatch:           64,
			ArenaShards:        0,
		},
	}
}

// Hard validity bounds. Wider than any derivation clamp: Validate rejects
// profiles that no sane calibration could have produced (hand-edited or
// corrupt files), not merely unusual hosts.
var bounds = []struct {
	name     string
	get      func(*Tuned) int
	min, max int
}{
	{"grain_monge", func(t *Tuned) int { return t.GrainMonge }, 1, 1 << 20},
	{"grain_dp", func(t *Tuned) int { return t.GrainDP }, 1, 1 << 20},
	{"grain_hufpar", func(t *Tuned) int { return t.GrainHufpar }, 1, 1 << 20},
	{"grain_lincfl", func(t *Tuned) int { return t.GrainLinCFL }, 1, 1 << 20},
	{"grain_batch", func(t *Tuned) int { return t.GrainBatch }, 1, 1 << 10},
	{"grain_target_ns", func(t *Tuned) int { return t.GrainTargetNs }, 1_000, 10_000_000},
	{"boolmat_ktile_bytes", func(t *Tuned) int { return t.BoolmatKTileBytes }, 1 << 14, 1 << 24},
	{"boolmat_serial_words", func(t *Tuned) int { return t.BoolmatSerialWords }, 0, 1 << 24},
	{"monge_serial_entries", func(t *Tuned) int { return t.MongeSerialEntries }, 0, 1 << 24},
	{"lincfl_serial_words", func(t *Tuned) int { return t.LinCFLSerialWords }, 0, 1 << 24},
	{"smawk_row_block", func(t *Tuned) int { return t.SMAWKRowBlock }, 16, 1 << 12},
	{"machine_pool_cap", func(t *Tuned) int { return t.MachinePoolCap }, 1, 1 << 10},
	{"max_batch", func(t *Tuned) int { return t.MaxBatch }, 1, 1 << 16},
	{"arena_shards", func(t *Tuned) int { return t.ArenaShards }, 0, 64},
}

// ErrVersion reports a schema mismatch; errors.Is-able so callers can
// distinguish "re-run -tune" from "file is garbage".
var ErrVersion = errors.New("tune: profile schema version mismatch")

// Validate checks that the profile's schema version matches and every
// tuned value sits inside its hard validity bounds.
func (p *Profile) Validate() error {
	if p.Version != CurrentVersion {
		return fmt.Errorf("%w: file has version %d, this binary speaks %d",
			ErrVersion, p.Version, CurrentVersion)
	}
	for _, b := range bounds {
		if v := b.get(&p.Tuned); v < b.min || v > b.max {
			return fmt.Errorf("tune: %s = %d outside valid range [%d, %d]",
				b.name, v, b.min, b.max)
		}
	}
	return nil
}

// IsStale reports whether the profile was calibrated on a visibly
// different machine shape than the running process (CPU count, OS or
// architecture). Stale profiles remain usable — every value passed
// Validate — but the numbers may no longer be optimal; the serving path
// surfaces the flag so operators know to re-run -tune.
func (p *Profile) IsStale() bool {
	h := currentHost()
	return p.Host.NumCPU != h.NumCPU || p.Host.GOARCH != h.GOARCH || p.Host.GOOS != h.GOOS
}

// hashBody is the identity-bearing subset of a profile: provenance labels
// (Source, CreatedAt) are excluded so re-deriving identical numbers — or
// saving and reloading — preserves the hash.
type hashBody struct {
	Version  int      `json:"version"`
	Host     Host     `json:"host"`
	Measured Measured `json:"measured"`
	Tuned    Tuned    `json:"tuned"`
}

// Hash returns a short hex digest identifying the profile's content.
func (p *Profile) Hash() string {
	raw, err := json.Marshal(hashBody{p.Version, p.Host, p.Measured, p.Tuned})
	if err != nil {
		// hashBody contains only numbers and strings; Marshal cannot fail.
		panic("tune: hash marshal: " + err.Error())
	}
	sum := sha256.Sum256(raw)
	return hex.EncodeToString(sum[:])[:12]
}

// Save writes the profile as indented JSON. The file round-trips through
// Load to identical tuned values and an identical Hash.
func (p *Profile) Save(path string) error {
	raw, err := json.MarshalIndent(p, "", "  ")
	if err != nil {
		return fmt.Errorf("tune: encode profile: %w", err)
	}
	return os.WriteFile(path, append(raw, '\n'), 0o644)
}

// Load reads and validates a profile file. Any failure — unreadable file,
// malformed JSON, version mismatch, out-of-bounds value — returns a nil
// profile and an error; callers fall back to Defaults (and should say so
// in their logs rather than silently running detuned).
func Load(path string) (*Profile, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("tune: read profile: %w", err)
	}
	p := new(Profile)
	if err := json.Unmarshal(raw, p); err != nil {
		return nil, fmt.Errorf("tune: parse profile %s: %w", path, err)
	}
	if err := p.Validate(); err != nil {
		return nil, fmt.Errorf("tune: invalid profile %s: %w", path, err)
	}
	return p, nil
}

// The process-wide active profile. Nil means Defaults; Active never
// returns nil. The pointer is atomic so kernels read tuned values
// lock-free on their hot paths and calibration can swap profiles under
// live traffic.
var active atomic.Pointer[Profile]

// fallback is the shared Defaults instance Active hands out before any
// SetActive. Immutable by convention (as all installed profiles are).
var fallback = Defaults()

// Active returns the installed profile, or the built-in defaults if none
// has been installed. The result must not be mutated.
func Active() *Profile {
	if p := active.Load(); p != nil {
		return p
	}
	return fallback
}

// SetActive installs p process-wide; nil reverts to the built-in
// defaults. The caller must not mutate p afterwards. Safe to call
// concurrently with running kernels: statements already in flight finish
// under the values they read, subsequent ones see the new profile.
func SetActive(p *Profile) {
	active.Store(p)
}
