package tune

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestDefaultsValidate pins the built-in profile inside its own hard
// bounds — Defaults drifting out of Validate's range would make the
// fallback path reject itself.
func TestDefaultsValidate(t *testing.T) {
	if err := Defaults().Validate(); err != nil {
		t.Fatalf("Defaults().Validate() = %v", err)
	}
}

// TestDefaultsMatchPreTuningConstants pins the default profile to the
// exact static values the tree shipped with before calibration existed:
// a process that never installs a profile must behave identically to the
// old constants, cutovers disabled.
func TestDefaultsMatchPreTuningConstants(t *testing.T) {
	d := Defaults().Tuned
	want := Tuned{
		GrainMonge: 2048, GrainDP: 1024, GrainHufpar: 512, GrainLinCFL: 64,
		GrainBatch: 1, GrainTargetNs: 100_000, BoolmatKTileBytes: 1 << 18,
		SMAWKRowBlock: 128, MachinePoolCap: 16, MaxBatch: 64,
	}
	if d != want {
		t.Fatalf("Defaults().Tuned = %+v, want the pre-tuning constants %+v", d, want)
	}
	if d.BoolmatSerialWords != 0 || d.MongeSerialEntries != 0 || d.LinCFLSerialWords != 0 {
		t.Fatalf("default profile must keep every serial cutover disabled, got %+v", d)
	}
}

// TestProfileRoundTrip writes a calibrated profile and loads it back:
// identical tuned values, identical hash.
func TestProfileRoundTrip(t *testing.T) {
	p := Calibrate(Config{Quick: true})
	if err := p.Validate(); err != nil {
		t.Fatalf("calibrated profile fails validation: %v", err)
	}
	path := filepath.Join(t.TempDir(), "partree-tune.json")
	if err := p.Save(path); err != nil {
		t.Fatalf("Save: %v", err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if got.Tuned != p.Tuned {
		t.Fatalf("tuned values changed across round trip:\nwrote %+v\nread  %+v", p.Tuned, got.Tuned)
	}
	if got.Measured != p.Measured {
		t.Fatalf("measured values changed across round trip:\nwrote %+v\nread  %+v", p.Measured, got.Measured)
	}
	if got.Hash() != p.Hash() {
		t.Fatalf("hash changed across round trip: wrote %s, read %s", p.Hash(), got.Hash())
	}
}

// TestHashIgnoresProvenance: Source and CreatedAt are labels, not
// identity — two profiles with the same numbers share a hash.
func TestHashIgnoresProvenance(t *testing.T) {
	a := Defaults()
	b := Defaults()
	b.Source = "loaded"
	b.CreatedAt = "2026-01-01T00:00:00Z"
	if a.Hash() != b.Hash() {
		t.Fatalf("hash depends on provenance: %s vs %s", a.Hash(), b.Hash())
	}
	c := Defaults()
	c.Tuned.GrainMonge++
	if a.Hash() == c.Hash() {
		t.Fatal("hash ignores a tuned-value change")
	}
}

// TestLoadRejectsCorrupt covers the fallback ladder: missing file,
// malformed JSON, wrong schema version, out-of-bounds value. Each must
// return an error (the caller then falls back to Defaults).
func TestLoadRejectsCorrupt(t *testing.T) {
	dir := t.TempDir()
	write := func(name, content string) string {
		p := filepath.Join(dir, name)
		if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
		return p
	}

	if _, err := Load(filepath.Join(dir, "absent.json")); err == nil {
		t.Fatal("Load(missing file) succeeded")
	}
	if _, err := Load(write("garbage.json", "{not json")); err == nil {
		t.Fatal("Load(malformed JSON) succeeded")
	}

	good := Defaults()
	path := filepath.Join(dir, "good.json")
	if err := good.Save(path); err != nil {
		t.Fatal(err)
	}
	raw, _ := os.ReadFile(path)

	versioned := strings.Replace(string(raw), `"version": 1`, `"version": 99`, 1)
	if !strings.Contains(versioned, `"version": 99`) {
		t.Fatal("test setup: version field not found in saved profile")
	}
	if _, err := Load(write("version.json", versioned)); !errors.Is(err, ErrVersion) {
		t.Fatalf("Load(wrong version) = %v, want ErrVersion", err)
	}

	bad := strings.Replace(string(raw), `"grain_monge": 2048`, `"grain_monge": -5`, 1)
	if !strings.Contains(bad, `"grain_monge": -5`) {
		t.Fatal("test setup: grain_monge field not found in saved profile")
	}
	if _, err := Load(write("bounds.json", bad)); err == nil {
		t.Fatal("Load(out-of-bounds value) succeeded")
	}
}

// TestStaleDetection: a profile from a different host shape flags stale;
// a freshly calibrated one does not.
func TestStaleDetection(t *testing.T) {
	p := Defaults()
	if p.IsStale() {
		t.Fatal("profile for the current host reports stale")
	}
	p.Host.NumCPU++
	if !p.IsStale() {
		t.Fatal("profile from a different CPU count not flagged stale")
	}
}

// TestActiveLifecycle: Active never returns nil, SetActive installs and
// nil restores defaults.
func TestActiveLifecycle(t *testing.T) {
	defer SetActive(nil)
	if Active() == nil {
		t.Fatal("Active() returned nil before any SetActive")
	}
	if Active().Source != "defaults" {
		t.Fatalf("initial active profile source = %q, want defaults", Active().Source)
	}
	p := Defaults()
	p.Source = "test"
	SetActive(p)
	if Active() != p {
		t.Fatal("SetActive did not install the profile")
	}
	SetActive(nil)
	if Active().Source != "defaults" {
		t.Fatal("SetActive(nil) did not restore defaults")
	}
}

// TestCalibrateBounds: every derived value respects both the derivation
// clamps' intent and the hard validity bounds, whatever this host
// measures. Run twice to shake out obvious nondeterminism in the
// derivation plumbing (the measurements themselves may differ).
func TestCalibrateBounds(t *testing.T) {
	for i := 0; i < 2; i++ {
		p := Calibrate(Config{Quick: true})
		if err := p.Validate(); err != nil {
			t.Fatalf("run %d: calibrated profile invalid: %v", i, err)
		}
		tn := p.Tuned
		if tn.GrainBatch != 1 {
			t.Fatalf("run %d: GrainBatch = %d, must stay 1", i, tn.GrainBatch)
		}
		if tn.BoolmatSerialWords == 0 || tn.MongeSerialEntries == 0 || tn.LinCFLSerialWords == 0 {
			t.Fatalf("run %d: calibration left a serial cutover disabled: %+v", i, tn)
		}
		if p.Source != "calibrated" {
			t.Fatalf("run %d: source = %q", i, p.Source)
		}
		if p.IsStale() {
			t.Fatalf("run %d: freshly calibrated profile reports stale", i)
		}
		for _, m := range []struct {
			name string
			v    float64
		}{
			{"LoopNs", p.Measured.LoopNs}, {"ScanNs", p.Measured.ScanNs},
			{"WordNs", p.Measured.WordNs}, {"RowNs", p.Measured.RowNs},
			{"InlineNs", p.Measured.InlineNs},
		} {
			if m.v <= 0 {
				t.Fatalf("run %d: measured %s = %v, want > 0", i, m.name, m.v)
			}
		}
	}
}
