package partree

import (
	"runtime"
	"sync"
	"sync/atomic"

	"partree/internal/engine"
	"partree/internal/pram"
)

// Machine reuse. Every facade entry point used to construct a fresh
// pram.Machine per call; under service traffic (millions of small jobs)
// that construction — and the worker-pool spawn behind the machine's
// first statement — dominated dispatch cost. The facade now keeps a
// small free list of idle machines per Options shape: acquire pops a
// warm machine (resident workers parked, adaptive-grain calibration
// intact) or constructs one, and the paired release scrubs the per-call
// state (context, tracer, stats) and returns it. Idle machines cost no
// goroutines after the runtime's idle timeout — parked workers retire on
// their own — so the pool never pins resources; DrainMachinePool drops
// the free lists synchronously for tests and service shutdown.

// machineKey identifies machines that are interchangeable: same worker
// count (resolved, so Workers: 0 and an explicit GOMAXPROCS value
// share), declared processor count, and grain policy — the pinned grain,
// or for adaptive machines the profile's chunk-cost target (machines
// calibrated against different targets must not mix, their EWMA-derived
// grains would fight). Trace and context are per-call state, scrubbed on
// release, so they are not part of the key.
type machineKey struct {
	workers int
	procs   int
	grain   int
	target  int // adaptive chunk-cost target ns; 0 when grain is pinned
}

// The per-key free-list cap comes from the active tuning profile
// (engine.MachinePoolCap, default 16): enough to cover the service's
// per-engine batchers plus concurrent facade callers without hoarding
// arbitrarily many parked pools under a load spike.

type machinePool struct {
	mu   sync.Mutex
	idle map[machineKey][]*pram.Machine

	constructed atomic.Int64
	reused      atomic.Int64
	discarded   atomic.Int64
}

var machines machinePool

// MachinePoolCounters is a snapshot of the facade machine pool's
// lifetime counters: Constructed + Reused = total acquires; Discarded
// counts releases that closed the machine instead of pooling it (free
// list full, or the call aborted).
type MachinePoolCounters struct {
	Constructed int64
	Reused      int64
	Discarded   int64
}

// MachinePoolStats returns the machine pool's counters, accumulated
// since process start or the last DrainMachinePool. At steady state
// Reused grows while Constructed stays flat — the property the E14
// experiment gates.
func MachinePoolStats() MachinePoolCounters {
	return MachinePoolCounters{
		Constructed: machines.constructed.Load(),
		Reused:      machines.reused.Load(),
		Discarded:   machines.discarded.Load(),
	}
}

// DrainMachinePool closes every idle pooled machine, empties the free
// lists and zeroes the lifetime counters, returning how many machines
// were dropped. In-flight machines are unaffected (their release
// re-pools them afterwards). The counter reset is what lets experiments
// sharing one process (E14, E15) each start from a clean slate instead
// of subtracting each other's churn.
func DrainMachinePool() int {
	machines.mu.Lock()
	var all []*pram.Machine
	for k, list := range machines.idle {
		all = append(all, list...)
		delete(machines.idle, k)
	}
	machines.mu.Unlock()
	for _, m := range all {
		m.Close()
	}
	machines.constructed.Store(0)
	machines.reused.Store(0)
	machines.discarded.Store(0)
	return len(all)
}

func (o Options) key() machineKey {
	k := machineKey{workers: o.Workers, procs: o.Processors, grain: o.Grain}
	if k.workers == 0 {
		k.workers = runtime.GOMAXPROCS(0)
	}
	if k.grain == 0 {
		k.target = o.tuned().Tuned.GrainTargetNs
	}
	return k
}

// acquire returns a machine for this Options shape and the release that
// must be called (exactly once, usually deferred) when the call's stats
// have been read. Read Stats/statsOf before release runs: release scrubs
// the machine for the next caller.
func (o Options) acquire() (*pram.Machine, func()) {
	key := o.key()
	machines.mu.Lock()
	var m *pram.Machine
	if list := machines.idle[key]; len(list) > 0 {
		m = list[len(list)-1]
		list[len(list)-1] = nil
		machines.idle[key] = list[:len(list)-1]
	}
	machines.mu.Unlock()

	if m == nil {
		// o.machine() resolves Workers: 0 to GOMAXPROCS exactly as key()
		// did, so the constructed machine matches its key.
		m = o.machine()
		machines.constructed.Add(1)
	} else {
		machines.reused.Add(1)
		if o.Trace != nil {
			m.SetTracer(o.Trace)
		}
	}

	released := false
	release := func() {
		if released {
			return
		}
		released = true
		machines.put(key, m)
	}
	return m, release
}

// put scrubs a machine's per-call state and re-pools it. Aborted
// machines (context fired mid-run) are closed instead: the unwind paths
// are tested clean, but a cancellation is rare enough that rebuilding is
// cheaper than proving every kernel left no residue.
func (p *machinePool) put(key machineKey, m *pram.Machine) {
	aborted := m.Err() != nil // before SetContext(nil) clears the evidence
	m.SetContext(nil)
	m.SetTracer(nil)
	if aborted {
		m.Close()
		p.discarded.Add(1)
		return
	}
	// Reset drops the caller-visible stats but keeps the adaptive-grain
	// calibration — that is workload knowledge, and sharing it across
	// calls of the same shape is part of the point of reuse.
	m.Reset()

	p.mu.Lock()
	if p.idle == nil {
		p.idle = make(map[machineKey][]*pram.Machine)
	}
	if len(p.idle[key]) < engine.MachinePoolCap() {
		p.idle[key] = append(p.idle[key], m)
		p.mu.Unlock()
		return
	}
	p.mu.Unlock()
	m.Close()
	p.discarded.Add(1)
}
