package partree

import (
	"math/big"

	"partree/internal/grammar"
	"partree/internal/lincfl"
)

// LinearGrammar is a linear context-free grammar in the normal form of
// Section 8 (every rule A → bB, A → Cb or A → a).
type LinearGrammar = grammar.Linear

// GrammarRule is an un-normalized linear rule A → Pre B Suf; leave B empty
// (with an empty Suf) for a terminal rule A → Pre, and leave Pre and Suf
// empty for a unit rule A → B.
type GrammarRule = grammar.RawRule

// NewLinearGrammar normalizes raw linear rules into the Section 8 normal
// form, introducing auxiliary nonterminals and eliminating unit rules.
func NewLinearGrammar(rules []GrammarRule, start string) (*LinearGrammar, error) {
	return grammar.Normalize(rules, start)
}

// PalindromeGrammar returns the stock grammar for odd palindromes over
// {a,b} with centre marker c.
func PalindromeGrammar() *LinearGrammar { return grammar.Palindrome() }

// RecognizeLinear reports whether w ∈ L(G) with the quadratic sequential
// dynamic program over the induced graph IG(G,w).
func RecognizeLinear(g *LinearGrammar, w []byte) bool {
	return lincfl.Sequential(g, w)
}

// LinearRecognitionResult is the output of RecognizeLinearParallel.
type LinearRecognitionResult struct {
	Accepted bool
	// Products is the number of Boolean matrix products performed and
	// WordOps the 64-bit word operations across them — the M(n) work that
	// Theorem 8.1's processor bound is parameterized by.
	Products int
	WordOps  int64
	// Depth is the divide-and-conquer recursion depth (O(log n)).
	Depth int
	Stats Stats
}

// RecognizeLinearParallel reports whether w ∈ L(G) with the paper's
// separator divide-and-conquer over the induced triangular grid, combining
// boundary-reachability matrices by Boolean matrix multiplication
// (Theorem 8.1).
func RecognizeLinearParallel(g *LinearGrammar, w []byte, opts ...Options) *LinearRecognitionResult {
	m, release := firstOption(opts).acquire()
	defer release()
	res := lincfl.RecognizeDC(m, g, w)
	return &LinearRecognitionResult{
		Accepted: res.Accepted,
		Products: res.Products,
		WordOps:  res.WordOps,
		Depth:    res.Depth,
		Stats:    statsOf(m),
	}
}

// DerivationStep is one rule application in a linear derivation.
type DerivationStep = lincfl.Step

// DeriveLinear returns a derivation (the linear grammar's "parse tree",
// which is a chain) of w from the start symbol, or ok=false if w ∉ L(G).
func DeriveLinear(g *LinearGrammar, w []byte) ([]DerivationStep, bool) {
	return lincfl.Derive(g, w)
}

// DeriveLinearParallel extracts a derivation using the separator
// divide-and-conquer itself (Theorem 8.1's "and generate a parse tree"):
// the recognition pass caches each region's boundary reachability and the
// extraction walks the accepting path across the separators.
func DeriveLinearParallel(g *LinearGrammar, w []byte, opts ...Options) ([]DerivationStep, bool) {
	m, release := firstOption(opts).acquire()
	defer release()
	return lincfl.DeriveDC(m, g, w)
}

// FormatDerivation renders a derivation as successive sentential forms.
func FormatDerivation(g *LinearGrammar, w []byte, steps []DerivationStep) string {
	return lincfl.FormatDerivation(g, w, steps)
}

// SubstringMembership reports membership of every substring w[i..j]
// (inclusive) in L(G) in one quadratic pass over the induced graph.
func SubstringMembership(g *LinearGrammar, w []byte) [][]bool {
	return lincfl.MembershipTable(g, w)
}

// CountDerivations returns the exact number of distinct derivations of w
// (as a big integer, since linear grammars can be exponentially
// ambiguous); zero means w ∉ L(G).
func CountDerivations(g *LinearGrammar, w []byte) *big.Int {
	return lincfl.CountDerivations(g, w)
}
